package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/soak"
	"repro/internal/storage"
)

// Config shapes a daemon.
type Config struct {
	// Addr is the listen address for ListenAndServe (e.g. ":8080" or
	// "127.0.0.1:0").
	Addr string
	// StoreDir roots the crash-safe store (results, job journal, soak
	// checkpoints).
	StoreDir string
	// QueueCap bounds the admission queue (default 16); submissions past
	// it are rejected with 429 and a backoff hint.
	QueueCap int
	// DrainTimeout bounds graceful drain (default 30s): how long SIGTERM
	// waits for in-flight work before cancelling it. Cancelled soaks keep
	// their chunk checkpoint and resume on the next submission.
	DrainTimeout time.Duration
	// JobTimeout, when positive, deadlines every job that does not carry
	// its own timeout_ms (0 = no deadline).
	JobTimeout time.Duration
	// EventBudget overrides the per-sample simulation watchdog (0 =
	// library default); exhaustion surfaces as a 422.
	EventBudget int
	// GitDescribe identifies the checkout; it salts every fingerprint so
	// a rebuilt daemon never serves a stale memoized document.
	GitDescribe string
	// Workers is the number of concurrent job executors (default 1).
	// Each worker's jobs run with a partitioned share of the global
	// sample pool (core.WithParallelism), so total goroutines stay
	// bounded and output stays byte-identical at any worker count.
	Workers int
	// StoreMaxBytes, when positive, caps the resident memoized-document
	// bytes; the store evicts least-recently-used documents to stay
	// under it (journaled-but-unserved jobs are never evicted).
	StoreMaxBytes int64
	// JobWatchdog, when positive, bounds how long a job may run before
	// the daemon cancels it; a job that ignores cancellation for another
	// JobWatchdog period is abandoned and reported as hung (504,
	// reason "watchdog"), its journal entry kept for restart replay.
	JobWatchdog time.Duration
	// FS is the filesystem every durable write goes through; nil means
	// the real disk. Tests and the PROTOLAT_FSFAULT env knob inject a
	// storage fault layer here.
	FS storage.FS
}

// Server is the experiment daemon: one admission queue, one store, and
// cfg.Workers goroutines executing jobs concurrently. Each job
// parallelizes internally over a partitioned share of the shared sample
// pool, so concurrent jobs split the machine instead of oversubscribing
// it — and because every driver's output is identical at any pool width,
// daemon output is byte-identical at any worker count.
type Server struct {
	cfg      Config
	store    *Store
	q        *queue
	baseCtx  context.Context
	cancel   context.CancelFunc
	workerWG sync.WaitGroup
	draining atomic.Bool
	inFlight atomic.Int32

	statsMu sync.Mutex
	stats   obs.ServeStatsDoc

	// beforeRun, when set (tests), runs after the memo re-check and
	// before a job executes — the hook coalescing and crash tests use to
	// hold a job in the running state.
	beforeRun func(*job)
}

// New opens the store, replays the journaled queue (crash recovery), and
// starts the worker. Recovered jobs are re-admitted ahead of new work;
// the queue is sized to hold all of them plus QueueCap fresh submissions.
func New(cfg Config) (*Server, error) {
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("serve: Config.StoreDir is required")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	store, err := OpenStoreFS(cfg.FS, cfg.StoreDir, cfg.StoreMaxBytes)
	if err != nil {
		return nil, err
	}
	pending, err := store.Recover()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		store: store,
		q:     newQueue(cfg.QueueCap + len(pending)),
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	for _, rj := range pending {
		s.q.enqueueRecovered(rj.Spec.Normalized(), rj.Fingerprint)
	}
	s.addStats(func(st *obs.ServeStatsDoc) {
		st.Accepted += len(pending)
		st.Recovered += len(pending)
	})
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// addStats mutates the counters under the stats lock.
func (s *Server) addStats(f func(*obs.ServeStatsDoc)) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	f(&s.stats)
}

// Stats snapshots the daemon counters plus the live queue state.
func (s *Server) Stats() obs.ServeStatsDoc {
	s.statsMu.Lock()
	st := s.stats
	s.statsMu.Unlock()
	st.QueueDepth = s.q.depth()
	st.QueueCap = s.cfg.QueueCap
	st.InFlight = int(s.inFlight.Load())
	st.Draining = s.draining.Load()
	st.Workers = s.cfg.Workers
	resident, capBytes, evicted, freed := s.store.Bytes()
	st.StoreBytes = resident
	st.StoreMaxBytes = capBytes
	st.Evicted = evicted
	st.EvictedBytes = freed
	return st
}

// worker executes admitted jobs until the queue closes; cfg.Workers of
// these run concurrently, each pulling from the shared queue.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.q.ch {
		s.runJob(j)
	}
}

// runJob executes one job end to end: memo re-check, build, classify,
// persist, publish. It always finishes the job, so waiters never hang.
func (s *Server) runJob(j *job) {
	defer s.q.finish(j)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	// Memo re-check: a recovered job may have persisted its document just
	// before the crash, and a coalesced burst may follow a completed run.
	if doc, err := s.store.Get(j.fp); err == nil && doc != nil {
		j.doc, j.cache, j.status = doc, "hit", http.StatusOK
		s.addStats(func(st *obs.ServeStatsDoc) { st.Completed++; st.StoreHits++ })
		s.store.DropJob(j.fp)
		return
	}
	// Partition the shared sample pool across workers: each job's fan-outs
	// are capped at an equal share, so W concurrent jobs use the same total
	// width one job would. Output is unaffected — every driver is
	// byte-identical at any width.
	ctx := s.baseCtx
	if s.cfg.Workers > 1 {
		share := core.Parallelism() / s.cfg.Workers
		if share < 1 {
			share = 1
		}
		ctx = core.WithParallelism(ctx, share)
	}
	cancel := func() {}
	timeout := s.cfg.JobTimeout
	if j.spec.TimeoutMS > 0 {
		timeout = time.Duration(j.spec.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	doc, err := s.buildWatched(ctx, cancel, j)
	cancel()
	if err == nil {
		j.doc, err = doc.Marshal()
	}
	if err != nil {
		j.err = err
		j.status, j.reason = classify(err)
		s.addStats(func(st *obs.ServeStatsDoc) { st.Failed++ })
		return
	}
	j.cache, j.status = "computed", http.StatusOK
	if perr := s.store.Put(j.fp, j.doc); perr != nil {
		// Degradation ladder: a result we computed but cannot persist is
		// still a correct result — serve it, flag it, keep the job
		// journal so a restart recomputes instead of losing it.
		j.degraded = true
		s.addStats(func(st *obs.ServeStatsDoc) { st.Completed++; st.DegradedPersists++ })
		return
	}
	s.store.DropJob(j.fp)
	s.store.DropJournal(j.fp)
	s.addStats(func(st *obs.ServeStatsDoc) { st.Completed++ })
}

// WatchdogError reports a job the per-job watchdog gave up on: it exceeded
// the watchdog period, was cancelled, and then ignored cancellation for a
// full grace period. The job's journal entry is kept so a restart replays
// it from scratch.
type WatchdogError struct {
	Fingerprint string
	After       time.Duration
}

// Error renders the hung-job failure.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("serve: job %s hung: exceeded the %v watchdog and ignored cancellation", e.Fingerprint, e.After)
}

// buildWatched runs the test hook and buildDocument for a job. With no
// watchdog configured it runs them inline. With cfg.JobWatchdog set it runs
// them in a child goroutine: if the job outlives the watchdog its context
// is cancelled, and if it then ignores cancellation for a full grace period
// (another watchdog interval) the goroutine is abandoned and the job
// reported hung with a typed WatchdogError. An abandoned build can never
// corrupt the store — only runJob persists documents, and it has already
// walked away.
func (s *Server) buildWatched(ctx context.Context, cancel context.CancelFunc, j *job) (*obs.Document, error) {
	wd := s.cfg.JobWatchdog
	if wd <= 0 {
		if hook := s.beforeRun; hook != nil {
			hook(j)
		}
		return s.buildDocument(ctx, j.spec, j.fp)
	}
	type buildRes struct {
		doc *obs.Document
		err error
	}
	ch := make(chan buildRes, 1)
	go func() {
		if hook := s.beforeRun; hook != nil {
			hook(j)
		}
		doc, err := s.buildDocument(ctx, j.spec, j.fp)
		ch <- buildRes{doc, err}
	}()
	timer := time.NewTimer(wd)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.doc, r.err
	case <-timer.C:
		cancel()
	}
	grace := time.NewTimer(wd)
	defer grace.Stop()
	select {
	case r := <-ch:
		// The job honored cancellation inside the grace period; its own
		// (likely context.Canceled) error classifies normally.
		return r.doc, r.err
	case <-grace.C:
		s.addStats(func(st *obs.ServeStatsDoc) { st.HungJobs++ })
		return nil, &WatchdogError{Fingerprint: j.fp, After: wd}
	}
}

// classify maps a job failure to its HTTP status and machine-readable
// reason — the daemon's degradation ladder.
func classify(err error) (int, string) {
	var se *SpecError
	var be *core.BudgetError
	var je *soak.JournalError
	var we *WatchdogError
	switch {
	case errors.As(err, &se):
		return http.StatusBadRequest, "spec"
	case errors.As(err, &be):
		return http.StatusUnprocessableEntity, "budget"
	case errors.As(err, &je):
		return http.StatusInternalServerError, "journal-" + je.Reason
	case errors.As(err, &we):
		return http.StatusGatewayTimeout, "watchdog"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "cancelled"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// retryAfterMS computes the backpressure hint for a rejected submission:
// exponential in the queue depth, with a deterministic jitter derived
// from the fingerprint (no wall-clock randomness — two clients with
// different specs spread out, and a given spec's hint is reproducible).
func retryAfterMS(fp string, depth int) int {
	shift := depth
	if shift > 6 {
		shift = 6
	}
	base := 250 << uint(shift)
	jitter := int(crc32.ChecksumIEEE([]byte(fp)) % uint32(base/2+1))
	ms := base + jitter
	if ms > 30000 {
		ms = 30000
	}
	return ms
}

// errorBody is the JSON error payload.
type errorBody struct {
	Error        string `json:"error"`
	Reason       string `json:"reason,omitempty"`
	RetryAfterMS int    `json:"retry_after_ms,omitempty"`
}

// writeError emits a JSON error, with a Retry-After header when the
// failure is retryable.
func writeError(w http.ResponseWriter, status int, msg, reason string, retryMS int) {
	w.Header().Set("Content-Type", "application/json")
	if retryMS > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", (retryMS+999)/1000))
	}
	w.WriteHeader(status)
	b, _ := json.Marshal(errorBody{Error: msg, Reason: reason, RetryAfterMS: retryMS})
	w.Write(append(b, '\n'))
}

// writeDoc emits a completed document.
func writeDoc(w http.ResponseWriter, doc []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(doc)
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/experiments   submit a spec; blocks until the document is ready
//	GET  /v1/results/{fp}  fetch a memoized document by fingerprint
//	GET  /v1/stats         daemon counters as a protolat JSON document
//	GET  /v1/jobs          queued/running jobs
//	GET  /v1/healthz       liveness and drain state
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/experiments", s.handleSubmit)
	mux.HandleFunc("/v1/results/", s.handleResult)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	return mux
}

// handleSubmit is the admission path; see the package comment for the
// order of gates (memo → drain → queue → coalesce).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a spec to this endpoint", "method", 0)
		return
	}
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: "+err.Error(), "parse", 0)
		return
	}
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), "spec", 0)
		return
	}
	fp := spec.Fingerprint(s.cfg.GitDescribe)
	w.Header().Set("X-Protolat-Fingerprint", fp)

	// Memo fast path: a stored result is served unconditionally — even
	// while draining or with a full queue, the cheapest path stays open.
	doc, err := s.store.Get(fp)
	if err != nil {
		status, reason := classify(err)
		s.addStats(func(st *obs.ServeStatsDoc) { st.Failed++ })
		writeError(w, status, err.Error(), reason, 0)
		return
	}
	if doc != nil {
		s.addStats(func(st *obs.ServeStatsDoc) { st.StoreHits++ })
		w.Header().Set("X-Protolat-Cache", "hit")
		writeDoc(w, doc)
		return
	}

	if s.draining.Load() {
		s.addStats(func(st *obs.ServeStatsDoc) { st.RejectedDraining++ })
		writeError(w, http.StatusServiceUnavailable,
			"daemon is draining; submit again after restart", "draining",
			retryAfterMS(fp, 0))
		return
	}

	// The journal entry is written inside the queue's admission critical
	// section, before any worker can see the job: a fast job could
	// otherwise finish (and drop a journal not yet written) before the
	// entry landed, stranding an orphan <fp>.job.json in the store.
	degradedAdmit := false
	j, coalesced, err := s.q.submit(spec, fp, func(*job) {
		if err := s.store.PutJob(fp, spec); err != nil {
			// Degradation: an unjournaled job still runs; it just will
			// not survive a crash. Flag it so the client knows.
			degradedAdmit = true
		}
	})
	switch {
	case errors.Is(err, errDraining):
		s.addStats(func(st *obs.ServeStatsDoc) { st.RejectedDraining++ })
		writeError(w, http.StatusServiceUnavailable, err.Error(), "draining", retryAfterMS(fp, 0))
		return
	case errors.Is(err, errQueueFull):
		depth := s.q.depth()
		s.addStats(func(st *obs.ServeStatsDoc) { st.RejectedFull++ })
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("queue full (%d jobs pending)", depth), "backpressure",
			retryAfterMS(fp, depth))
		return
	case err != nil:
		s.addStats(func(st *obs.ServeStatsDoc) { st.Failed++ })
		writeError(w, http.StatusInternalServerError, err.Error(), "internal", 0)
		return
	}

	if coalesced {
		s.addStats(func(st *obs.ServeStatsDoc) { st.Coalesced++ })
	} else {
		s.addStats(func(st *obs.ServeStatsDoc) { st.Accepted++; st.StoreMisses++ })
		if degradedAdmit {
			s.addStats(func(st *obs.ServeStatsDoc) { st.DegradedPersists++ })
		}
	}

	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client gone; the job keeps running and lands in the store for
		// the retry this disconnect will usually provoke.
		return
	}

	if j.status != http.StatusOK {
		writeError(w, j.status, j.err.Error(), j.reason, 0)
		return
	}
	cache := j.cache
	if coalesced && cache == "computed" {
		cache = "coalesced"
	}
	w.Header().Set("X-Protolat-Cache", cache)
	if j.degraded || degradedAdmit {
		w.Header().Set("X-Protolat-Degraded", "store")
	}
	writeDoc(w, j.doc)
}

// handleResult serves a memoized document by fingerprint.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET a fingerprint from this endpoint", "method", 0)
		return
	}
	fp := strings.TrimPrefix(r.URL.Path, "/v1/results/")
	if fp == "" || strings.ContainsAny(fp, "/\\.") {
		writeError(w, http.StatusBadRequest, "want /v1/results/<fingerprint>", "path", 0)
		return
	}
	doc, err := s.store.Get(fp)
	if err != nil {
		status, reason := classify(err)
		writeError(w, status, err.Error(), reason, 0)
		return
	}
	if doc == nil {
		writeError(w, http.StatusNotFound, "no memoized result for "+fp, "missing", 0)
		return
	}
	s.addStats(func(st *obs.ServeStatsDoc) { st.StoreHits++ })
	w.Header().Set("X-Protolat-Fingerprint", fp)
	w.Header().Set("X-Protolat-Cache", "hit")
	writeDoc(w, doc)
}

// handleStats serves the daemon counters wrapped in the standard document
// schema, so the same tooling that reads experiment exports reads daemon
// health.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	doc := s.newDoc("protolat -serve", 0, core.Quick)
	st := s.Stats()
	doc.Serve = &st
	b, err := doc.Marshal()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), "internal", 0)
		return
	}
	writeDoc(w, b)
}

// handleJobs lists queued/running jobs in fingerprint order.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.q.snapshot()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Fingerprint < jobs[j].Fingerprint })
	w.Header().Set("Content-Type", "application/json")
	b, _ := json.MarshalIndent(struct {
		Jobs []jobInfo `json:"jobs"`
	}{Jobs: jobs}, "", "  ")
	w.Write(append(b, '\n'))
}

// handleHealthz reports liveness and drain state.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":%q}\n", status)
}

// BeginDrain stops admission: the queue closes (new submissions get 503
// with a retry hint; memo hits still serve) and the worker finishes what
// was already admitted. Idempotent.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.q.close()
	}
}

// Drain performs graceful shutdown: stop admission, wait up to timeout
// for in-flight and queued jobs to finish, then cancel the survivors
// cooperatively. A cancelled soak keeps its chunk checkpoint and an
// unfinished job keeps its queue journal, so nothing is lost — the next
// start recovers both. Returns nil on a clean drain.
func (s *Server) Drain(timeout time.Duration) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
	}
	s.cancel()
	select {
	case <-done:
		return fmt.Errorf("serve: drain exceeded %v; in-flight work cancelled (journals preserved for restart)", timeout)
	case <-time.After(10 * time.Second):
		return fmt.Errorf("serve: drain exceeded %v and in-flight work ignored cancellation", timeout)
	}
}

// Close shuts the daemon down for tests and embedders: drain admission,
// cancel whatever is still running, wait for the worker.
func (s *Server) Close() {
	s.BeginDrain()
	s.cancel()
	s.workerWG.Wait()
}

// ListenAndServe runs the daemon at cfg.Addr until SIGTERM/SIGINT, then
// drains gracefully (finish in-flight work, persist, refuse new work) and
// exits. The bound address is announced on stderr — with ":0" that line
// is how callers learn the port.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "protolat: serving on %s (store %s)\n", ln.Addr(), s.cfg.StoreDir)
	srv := &http.Server{Handler: s.Handler()}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	// Serve returns the moment Shutdown closes the listener, which is
	// before in-flight handlers have written their responses — returning
	// then would exit the process and cut those connections mid-reply. So
	// the drain goroutine reports only after Shutdown has finished waiting
	// for active handlers, and a signalled exit blocks on that report.
	draining := make(chan struct{})
	drainErr := make(chan error, 1)
	go func() {
		<-sigc
		close(draining)
		fmt.Fprintln(os.Stderr, "protolat: drain requested; refusing new work")
		err := s.Drain(s.cfg.DrainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		drainErr <- err
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	select {
	case <-draining:
		return <-drainErr
	default:
		return nil
	}
}
