package serve

import (
	"errors"
	"sync"
)

// Sentinel admission failures; the HTTP layer maps them to 429 and 503.
var (
	errQueueFull = errors.New("serve: job queue full")
	errDraining  = errors.New("serve: daemon is draining; not accepting new work")
)

// job is one admitted experiment. The worker fills the result fields and
// then closes done; every waiter (the submitting handler plus any
// coalesced ones) reads them only after done, so no field needs a lock.
type job struct {
	spec Spec
	fp   string
	// recovered marks a job replayed from the journaled queue after a
	// restart rather than submitted over HTTP.
	recovered bool

	done chan struct{}
	// Result fields, written by the worker before close(done):
	doc      []byte
	err      error
	status   int    // HTTP status for the outcome
	reason   string // machine-readable failure class
	cache    string // "computed" or "hit" (memo satisfied before running)
	degraded bool   // result served but not persisted
}

// queue is the bounded admission queue with fingerprint coalescing: byFP
// tracks every queued or running job, so an identical concurrent spec
// attaches to the existing job instead of enqueueing a second execution.
type queue struct {
	mu     sync.Mutex
	byFP   map[string]*job
	ch     chan *job
	closed bool
}

func newQueue(capacity int) *queue {
	if capacity < 1 {
		capacity = 1
	}
	return &queue{byFP: make(map[string]*job), ch: make(chan *job, capacity)}
}

// submit admits a spec, returning the job to wait on and whether the
// caller coalesced onto an existing one. A closed (draining) queue
// returns errDraining, a full one errQueueFull. journal, when non-nil,
// runs for a freshly admitted job after the capacity check but before
// the job becomes visible to any worker — the window in which the job's
// journal entry must land, because a fast worker could otherwise run
// the job to completion (dropping a journal that does not exist yet)
// and strand the late-written entry as an orphan.
func (q *queue) submit(spec Spec, fp string, journal func(*job)) (j *job, coalesced bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if existing, ok := q.byFP[fp]; ok {
		return existing, true, nil
	}
	if q.closed {
		return nil, false, errDraining
	}
	if len(q.ch) == cap(q.ch) {
		return nil, false, errQueueFull
	}
	j = &job{spec: spec, fp: fp, done: make(chan struct{})}
	if journal != nil {
		journal(j)
	}
	q.byFP[fp] = j
	// Cannot block: every sender holds q.mu, and len < cap was checked
	// under the same lock (receivers only shrink the channel).
	q.ch <- j
	return j, false, nil
}

// enqueueRecovered re-admits a crash-recovered job during startup, before
// the worker starts; the caller sizes the channel to make room.
func (q *queue) enqueueRecovered(spec Spec, fp string) *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if existing, ok := q.byFP[fp]; ok {
		return existing
	}
	j := &job{spec: spec, fp: fp, recovered: true, done: make(chan struct{})}
	q.byFP[fp] = j
	q.ch <- j
	return j
}

// finish publishes a job's result: it leaves the coalescing map (new
// identical submissions now re-check the store instead) and its waiters
// unblock. Closing done is the happens-before edge that makes the result
// fields safe to read.
func (q *queue) finish(j *job) {
	q.mu.Lock()
	delete(q.byFP, j.fp)
	q.mu.Unlock()
	close(j.done)
}

// close stops admission; the worker drains what was already queued. Safe
// to call more than once.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

// depth reports how many admitted jobs await the worker.
func (q *queue) depth() int { return len(q.ch) }

// snapshot lists the queued or running jobs' fingerprints and kinds.
func (q *queue) snapshot() []jobInfo {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]jobInfo, 0, len(q.byFP))
	for fp, j := range q.byFP {
		out = append(out, jobInfo{Fingerprint: fp, Kind: j.spec.Kind, Recovered: j.recovered})
	}
	return out
}

// jobInfo is one row of the GET /v1/jobs listing.
type jobInfo struct {
	Fingerprint string `json:"fingerprint"`
	Kind        string `json:"kind"`
	Recovered   bool   `json:"recovered,omitempty"`
}
