// Package serve implements the protolat experiment daemon: a persistent
// HTTP/JSON service that accepts experiment specs (single runs, tables,
// fault studies, soaks, lints, profiles), validates and fingerprints them,
// schedules them on the shared worker pool through a bounded journaled job
// queue, and memoizes completed documents in a crash-safe on-disk store
// built on the soak journal's tmp+rename+CRC32 discipline.
//
// Robustness properties, in the order a request meets them:
//
//   - Admission control: the job queue is bounded; a full queue rejects
//     with 429 and a deterministic backoff hint, a draining daemon with
//     503. A memoized result is served even while draining or full — the
//     cheapest path stays open the longest.
//   - Coalescing: concurrent submissions of an identical spec (same
//     fingerprint) attach to the one queued execution instead of running
//     it again.
//   - Crash safety: admitted jobs are journaled before execution and
//     results are persisted before the response is sent, both atomically.
//     After a kill -9 the daemon replays the journaled queue on startup,
//     resumes interrupted soaks from their chunk checkpoint, and serves
//     re-requests byte-identically from the store.
//   - Watchdogs: every job runs under the per-sample event-budget
//     watchdog (422 on exhaustion) and an optional deadline (504), and is
//     cancelled cooperatively when the daemon drains past its timeout.
//   - Graceful degradation: a result whose store write fails is still
//     served (flagged degraded); a tampered store or journal surfaces as
//     a typed 500 naming the corruption instead of a wrong answer.
//
// Everything the daemon computes inherits the library's determinism:
// identical specs on an identical checkout produce byte-identical
// documents, which is what makes fingerprint-keyed memoization sound.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/optimize"
	"repro/internal/protocols/recovery"
)

// Spec is one experiment request. Kind selects the mode (mirroring the
// protolat CLI modes); the remaining fields parameterize it and are
// canonicalized by Normalized so that semantically identical requests
// fingerprint — and therefore memoize and coalesce — identically.
type Spec struct {
	// Kind is the experiment mode: "run", "table", "faults", "soak",
	// "lint", "profile", "machines", or "optimize".
	Kind string `json:"kind"`
	// Stack selects the protocol stack: "tcpip" (default) or "rpc".
	Stack string `json:"stack,omitempty"`
	// Version is the layout configuration for "run" (default "ALL").
	Version string `json:"version,omitempty"`
	// Quality is the measurement effort: "quick" (default) or "paper".
	Quality string `json:"quality,omitempty"`
	// Samples is the sample count for "run" (default 3).
	Samples int `json:"samples,omitempty"`
	// Policy is the recovery policy for "run": "fixed" (default) or
	// "adaptive".
	Policy string `json:"policy,omitempty"`
	// Table selects the table (1..9) for "table".
	Table int `json:"table,omitempty"`
	// Seed drives the fault plans of "faults" and "soak" (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Rates is the comma-separated fault-rate list for "faults" (empty
	// keeps the study default).
	Rates string `json:"rates,omitempty"`
	// Top is the per-version function count for "profile" (default 10).
	Top int `json:"top,omitempty"`
	// SoakBatches and SoakRoundtrips override the soak batch shape
	// (0 keeps the quality default).
	SoakBatches    int `json:"soak_batches,omitempty"`
	SoakRoundtrips int `json:"soak_roundtrips,omitempty"`
	// Models is the machine-model selection for "machines" and
	// "optimize": "all" (default) or a comma-separated list of matrix
	// names. The machines land in the canonical spec, so two selections
	// that sweep different hardware fingerprint — and memoize —
	// separately.
	Models string `json:"models,omitempty"`
	// Budget is the annealing steps per machine for "optimize" (0 keeps
	// the search default).
	Budget int `json:"budget,omitempty"`
	// TimeoutMS bounds the job's execution (0 = the daemon default). A
	// deadline is an execution detail, not a semantic input, so it is
	// excluded from the fingerprint.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// SpecError reports an invalid spec field; the daemon maps it to a 400.
type SpecError struct {
	Field string
	Msg   string
}

// Error renders the failure with its field.
func (e *SpecError) Error() string { return fmt.Sprintf("spec field %q: %s", e.Field, e.Msg) }

// Normalized canonicalizes the spec: defaults filled, case folded, and
// every field irrelevant to the kind zeroed, so two requests that would
// compute the same document carry the same bytes into Fingerprint.
func (s Spec) Normalized() Spec {
	s.Kind = strings.ToLower(strings.TrimSpace(s.Kind))
	s.Stack = strings.ToLower(strings.TrimSpace(s.Stack))
	if s.Stack == "" {
		s.Stack = "tcpip"
	}
	s.Quality = strings.ToLower(strings.TrimSpace(s.Quality))
	if s.Quality == "" {
		s.Quality = "quick"
	}
	s.Policy = strings.ToLower(strings.TrimSpace(s.Policy))
	s.Rates = strings.ReplaceAll(s.Rates, " ", "")
	if s.TimeoutMS < 0 {
		s.TimeoutMS = 0
	}
	switch s.Kind {
	case "run":
		if s.Version == "" {
			s.Version = "ALL"
		}
		for _, v := range core.Versions() {
			if strings.EqualFold(v.String(), s.Version) {
				s.Version = v.String()
			}
		}
		if s.Samples <= 0 {
			s.Samples = 3
		}
		s.Table, s.Seed, s.Rates, s.Top = 0, 0, "", 0
		s.SoakBatches, s.SoakRoundtrips, s.Models, s.Budget = 0, 0, "", 0
	case "table":
		s.Version, s.Samples, s.Policy = "", 0, ""
		s.Seed, s.Rates, s.Top = 0, "", 0
		s.SoakBatches, s.SoakRoundtrips, s.Models, s.Budget = 0, 0, "", 0
	case "faults":
		if s.Seed == 0 {
			s.Seed = 1
		}
		s.Version, s.Samples, s.Policy, s.Table, s.Top = "", 0, "", 0, 0
		s.SoakBatches, s.SoakRoundtrips, s.Models, s.Budget = 0, 0, "", 0
	case "soak":
		if s.Seed == 0 {
			s.Seed = 1
		}
		s.Version, s.Samples, s.Policy, s.Table = "", 0, "", 0
		s.Rates, s.Top, s.Models, s.Budget = "", 0, "", 0
	case "lint":
		// Lint is static: neither quality nor any run parameter matters.
		s.Quality = "quick"
		s.Version, s.Samples, s.Policy, s.Table = "", 0, "", 0
		s.Seed, s.Rates, s.Top = 0, "", 0
		s.SoakBatches, s.SoakRoundtrips, s.Models, s.Budget = 0, 0, "", 0
	case "profile":
		if s.Top <= 0 {
			s.Top = 10
		}
		s.Version, s.Samples, s.Policy, s.Table = "", 0, "", 0
		s.Seed, s.Rates = 0, ""
		s.SoakBatches, s.SoakRoundtrips, s.Models, s.Budget = 0, 0, "", 0
	case "machines":
		if s.Seed == 0 {
			s.Seed = 1
		}
		// "all" and "" select the same sweep; canonicalize to "all" so
		// both spellings share one fingerprint. Explicit lists keep their
		// order — it is report order, a semantic input.
		s.Models = strings.ReplaceAll(strings.ToLower(s.Models), " ", "")
		if s.Models == "" {
			s.Models = "all"
		}
		s.Version, s.Samples, s.Policy, s.Table, s.Top = "", 0, "", 0, 0
		s.SoakBatches, s.SoakRoundtrips, s.Budget = 0, 0, 0
	case "optimize":
		if s.Seed == 0 {
			s.Seed = 1
		}
		if s.Budget <= 0 {
			// The default budget is part of the canonical spec: a request
			// that spells it out fingerprints like one that relies on it.
			s.Budget = optimize.DefaultBudget
		}
		s.Models = strings.ReplaceAll(strings.ToLower(s.Models), " ", "")
		if s.Models == "" {
			s.Models = "all"
		}
		s.Version, s.Samples, s.Policy, s.Table, s.Top = "", 0, "", 0, 0
		s.Rates, s.SoakBatches, s.SoakRoundtrips = "", 0, 0
	}
	return s
}

// Validate checks a normalized spec, returning a *SpecError naming the
// first offending field.
func (s Spec) Validate() error {
	switch s.Kind {
	case "run", "table", "faults", "soak", "lint", "profile", "machines", "optimize":
	case "":
		return &SpecError{Field: "kind", Msg: "required (run, table, faults, soak, lint, profile, machines, optimize)"}
	default:
		return &SpecError{Field: "kind", Msg: fmt.Sprintf("unknown kind %q (want run, table, faults, soak, lint, profile, machines, optimize)", s.Kind)}
	}
	if s.Stack != "tcpip" && s.Stack != "rpc" {
		return &SpecError{Field: "stack", Msg: fmt.Sprintf("unknown stack %q (want tcpip or rpc)", s.Stack)}
	}
	if s.Quality != "quick" && s.Quality != "paper" {
		return &SpecError{Field: "quality", Msg: fmt.Sprintf("unknown quality %q (want quick or paper)", s.Quality)}
	}
	switch s.Kind {
	case "run":
		if _, err := s.version(); err != nil {
			return err
		}
		if _, err := recovery.ParseKind(s.Policy); err != nil {
			return &SpecError{Field: "policy", Msg: err.Error()}
		}
	case "table":
		if s.Table < 1 || s.Table > 9 {
			return &SpecError{Field: "table", Msg: fmt.Sprintf("table %d out of range (want 1..9)", s.Table)}
		}
	case "faults":
		if s.Rates != "" {
			if _, err := parseRates(s.Rates); err != nil {
				return &SpecError{Field: "rates", Msg: err.Error()}
			}
		}
	case "machines":
		if _, err := machines.Select(s.Models); err != nil {
			return &SpecError{Field: "models", Msg: err.Error()}
		}
		if s.Rates != "" {
			if _, err := parseRates(s.Rates); err != nil {
				return &SpecError{Field: "rates", Msg: err.Error()}
			}
		}
	case "optimize":
		if _, err := machines.Select(s.Models); err != nil {
			return &SpecError{Field: "models", Msg: err.Error()}
		}
	}
	return nil
}

// Fingerprint identifies the document this spec computes: a hash of the
// canonical spec (minus execution details) and the checkout identity.
// Equal fingerprints are the daemon's license to memoize and coalesce.
func (s Spec) Fingerprint(gitDescribe string) string {
	c := s.Normalized()
	c.TimeoutMS = 0
	b, err := json.Marshal(c)
	if err != nil {
		// A Spec of plain scalars cannot fail to marshal; guard anyway.
		b = []byte(fmt.Sprintf("%+v", c))
	}
	h := sha256.Sum256(append(b, []byte("|"+gitDescribe)...))
	return hex.EncodeToString(h[:8])
}

// version resolves the spec's Version name.
func (s Spec) version() (core.Version, error) {
	for _, v := range core.Versions() {
		if strings.EqualFold(v.String(), s.Version) {
			return v, nil
		}
	}
	return 0, &SpecError{Field: "version", Msg: fmt.Sprintf("unknown version %q", s.Version)}
}

// stackKind resolves the spec's Stack name (already validated).
func (s Spec) stackKind() core.StackKind {
	if s.Stack == "rpc" {
		return core.StackRPC
	}
	return core.StackTCPIP
}

// quality resolves the spec's Quality preset.
func (s Spec) quality() core.Quality {
	if s.Quality == "paper" {
		return core.PaperQuality
	}
	return core.Quick
}

// parseRates parses a comma-separated fault-rate list.
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		var r float64
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%g", &r); err != nil || r < 0 || r > 1 {
			return nil, fmt.Errorf("bad fault rate %q (want 0..1)", part)
		}
		out = append(out, r)
	}
	return out, nil
}
