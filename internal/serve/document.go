package serve

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/obs"
	"repro/internal/optimize"
	"repro/internal/protocols/recovery"
	"repro/internal/soak"
)

// buildDocument computes the document a spec describes, mirroring the
// protolat CLI's export paths value for value — including the semantic
// command string recorded in the manifest — so a document computed by the
// daemon is byte-identical to one exported by the equivalent CLI
// invocation on the same checkout.
func (s *Server) buildDocument(ctx context.Context, spec Spec, fp string) (*obs.Document, error) {
	kind := spec.stackKind()
	q := spec.quality()
	switch spec.Kind {
	case "run":
		ver, err := spec.version()
		if err != nil {
			return nil, err
		}
		rk, err := recovery.ParseKind(spec.Policy)
		if err != nil {
			return nil, &SpecError{Field: "policy", Msg: err.Error()}
		}
		cfg := core.DefaultConfig(kind, ver)
		cfg.Warmup, cfg.Measured, cfg.Samples = q.Warmup, q.Measured, spec.Samples
		cfg.Recovery = rk
		cfg.EventBudget = s.cfg.EventBudget
		cfg.Profile = true
		res, err := core.RunCtx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		command := fmt.Sprintf("protolat -stack %s -version %v -samples %d", spec.Stack, ver, spec.Samples)
		if spec.Policy != "" {
			command += " -policy " + string(rk)
		}
		doc := s.newDoc(command, 0, q)
		doc.Runs = []obs.Run{core.RunDoc(res)}
		return doc, nil

	case "table":
		doc := s.newDoc(fmt.Sprintf("protolat -table %d -quality %s", spec.Table, spec.Quality), 0, q)
		if spec.Table <= 3 {
			var data obs.Table
			var err error
			switch spec.Table {
			case 1:
				_, data, err = core.Table1Full(q)
			case 2:
				_, data, err = core.Table2Full(q)
			case 3:
				_, data, err = core.Table3Full(q)
			}
			if err != nil {
				return nil, err
			}
			doc.Tables = []obs.Table{data}
			return doc, nil
		}
		tcpip, err := core.RunVersionsProfiledCtx(ctx, core.StackTCPIP, q)
		if err != nil {
			return nil, err
		}
		rpc, err := core.RunVersionsProfiledCtx(ctx, core.StackRPC, q)
		if err != nil {
			return nil, err
		}
		switch spec.Table {
		case 4, 5:
			doc.Tables = core.Table45Data(tcpip, rpc)
		case 6:
			doc.Tables = []obs.Table{core.Table6Data(tcpip, rpc)}
		case 7:
			doc.Tables = []obs.Table{core.Table7Data(tcpip, rpc)}
		case 8:
			doc.Tables = []obs.Table{core.Table8Data(tcpip, rpc)}
		case 9:
			doc.Tables = []obs.Table{core.Table9Data(tcpip, rpc)}
		}
		doc.Runs = append(core.RunsDoc(tcpip), core.RunsDoc(rpc)...)
		return doc, nil

	case "faults":
		cfg := core.DefaultFaultStudy(kind, spec.Seed)
		if spec.Quality != "paper" {
			cfg.Quality = core.Quality{Warmup: 3, Measured: 12, Samples: 1}
		}
		if spec.Rates != "" {
			rates, err := parseRates(spec.Rates)
			if err != nil {
				return nil, &SpecError{Field: "rates", Msg: err.Error()}
			}
			cfg.Rates = rates
		}
		cfg.EventBudget = s.cfg.EventBudget
		cells, err := core.FaultStudyCtx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		doc := s.newDoc(fmt.Sprintf("protolat -faults -stack %s -seed %d -rates %s -quality %s",
			spec.Stack, spec.Seed, spec.Rates, spec.Quality), spec.Seed, q)
		doc.FaultStudy = core.FaultStudyDocOf(cfg, cells)
		rcells, err := core.RecoveryComparisonCtx(ctx, kind, spec.Seed, cfg.Quality)
		if err != nil {
			return nil, err
		}
		doc.FaultStudy.Recovery = core.RecoveryDocOf(rcells)
		return doc, nil

	case "soak":
		cfg := soak.DefaultConfig(kind, spec.Seed)
		if spec.Quality == "paper" {
			cfg.BatchesPerCell = 10
			cfg.BatchRoundtrips = 24
		}
		if spec.SoakBatches > 0 {
			cfg.BatchesPerCell = spec.SoakBatches
		}
		if spec.SoakRoundtrips > 0 {
			cfg.BatchRoundtrips = spec.SoakRoundtrips
		}
		cfg.EventBudget = s.cfg.EventBudget
		cfg.CheckpointPath = s.store.JournalPath(fp)
		cfg.FS = s.store.fs
		run := soak.RunCtx
		if _, err := s.store.fs.Stat(cfg.CheckpointPath); err == nil {
			// A checkpoint from an interrupted earlier attempt: resume
			// it instead of recomputing finished chunks. A tampered or
			// mismatched journal surfaces as a typed *soak.JournalError.
			run = soak.ResumeCtx
		}
		res, err := run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		// The manifest's quality block records the soak's own batch
		// shape, exactly as the CLI export does.
		mq := core.Quality{Warmup: cfg.Warmup, Measured: cfg.BatchRoundtrips, Samples: cfg.BatchesPerCell}
		doc := s.newDoc(fmt.Sprintf("protolat -soak -stack %s -seed %d -quality %s",
			spec.Stack, spec.Seed, spec.Quality), spec.Seed, mq)
		doc.Soak = soak.Doc(res)
		return doc, nil

	case "lint":
		cells, err := core.LintStudy(kind, core.Bipartite)
		if err != nil {
			return nil, err
		}
		doc := s.newDoc(fmt.Sprintf("protolat -lint -stack %s", spec.Stack), 0, q)
		doc.Verify = core.LintStudyDocOf(kind, core.Bipartite, cells)
		return doc, nil

	case "machines":
		models, err := machines.Select(spec.Models)
		if err != nil {
			return nil, &SpecError{Field: "models", Msg: err.Error()}
		}
		cfg := core.DefaultMachineStudy(kind, spec.Seed)
		cfg.Models = models
		if spec.Quality == "paper" {
			cfg.Quality = core.Quality{Warmup: 8, Measured: 24, Samples: 3}
		}
		if spec.Rates != "" {
			rates, err := parseRates(spec.Rates)
			if err != nil {
				return nil, &SpecError{Field: "rates", Msg: err.Error()}
			}
			cfg.Rates = rates
		}
		cfg.EventBudget = s.cfg.EventBudget
		cells, err := core.MachineStudyCtx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		doc := s.newDoc(fmt.Sprintf("protolat -machines %s -stack %s -seed %d -rates %s -quality %s",
			spec.Models, spec.Stack, spec.Seed, spec.Rates, spec.Quality), spec.Seed, q)
		doc.Machines = core.MachineStudyDocOf(cfg, cells)
		return doc, nil

	case "optimize":
		models, err := machines.Select(spec.Models)
		if err != nil {
			return nil, &SpecError{Field: "models", Msg: err.Error()}
		}
		cfg := optimize.Default(kind, spec.Seed)
		cfg.Models = models
		cfg.Budget = spec.Budget
		if spec.Quality == "paper" {
			cfg.Quality = core.Quality{Warmup: 8, Measured: 24, Samples: 3}
		}
		cfg.EventBudget = s.cfg.EventBudget
		results, err := optimize.RunCtx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		doc := s.newDoc(fmt.Sprintf("protolat -optimize %s -stack %s -seed %d -budget %d -candidates %d -quality %s",
			spec.Models, spec.Stack, spec.Seed, cfg.Budget, cfg.TopK, spec.Quality), spec.Seed, q)
		doc.Optimize = optimize.DocOf(cfg, results)
		return doc, nil

	case "profile":
		text, results, err := core.ProfileReportCtx(ctx, kind, q, spec.Top)
		if err != nil {
			return nil, err
		}
		doc := s.newDoc(fmt.Sprintf("protolat -profile -stack %s -top %d -quality %s",
			spec.Stack, spec.Top, spec.Quality), 0, q)
		doc.Runs = core.RunsDoc(results)
		doc.Figures = append(doc.Figures, obs.Figure{
			Name: "profile", Title: "Per-function mCPI attribution", Text: text})
		return doc, nil
	}
	return nil, &SpecError{Field: "kind", Msg: fmt.Sprintf("unknown kind %q", spec.Kind)}
}

// newDoc starts a document with the manifest the CLI would write for the
// same semantic command on this checkout.
func (s *Server) newDoc(command string, seed uint64, q core.Quality) *obs.Document {
	doc := &obs.Document{Manifest: core.NewManifest(command, seed, q)}
	doc.Manifest.GitDescribe = s.cfg.GitDescribe
	return doc
}
