package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/soak"
	"repro/internal/storage"
)

// Store file formats, all carried by the soak journal envelope
// (tmp+rename+CRC32, typed *soak.JournalError on every failure mode).
const (
	// docMagic identifies a memoized result document.
	docMagic = "protolat-serve-doc"
	// jobMagic identifies a journaled pending job.
	jobMagic = "protolat-serve-job"
	// storeSchema versions both formats together.
	storeSchema = 1
)

// Store is the daemon's crash-safe on-disk state: memoized result
// documents keyed by spec fingerprint, journaled pending jobs (written at
// admission, removed at completion), and soak chunk checkpoints. Every
// file is written atomically under the soak journal envelope, so a kill
// -9 at any instant leaves the store replayable: Recover drops torn temp
// files and returns the jobs that were admitted but never finished.
//
// When maxBytes is positive the store evicts least-recently-used documents
// to stay under the cap. Eviction is itself crash-safe: each eviction is a
// single atomic Remove, and a fingerprint with a journaled-but-unserved job
// is never evicted (its document is the job's pending answer). All file
// operations go through the injected storage.FS so the fault layer can
// enumerate crash points through the store paths too.
type Store struct {
	dir      string
	fs       storage.FS
	maxBytes int64

	mu sync.Mutex
	// lru orders resident document fingerprints from least to most
	// recently used; sizes maps fingerprint to stored byte size. Both
	// cover only .doc.json files — jobs and journals are transient and
	// never evicted.
	lru     []string
	sizes   map[string]int64
	evicted int64 // documents evicted since open
	freed   int64 // bytes freed by eviction since open
}

// RecoveredJob is one admitted-but-unfinished job replayed from the
// journaled queue after a restart.
type RecoveredJob struct {
	Fingerprint string
	Spec        Spec
}

// OpenStore opens (creating if needed) a store rooted at dir on the real
// filesystem with no size cap.
func OpenStore(dir string) (*Store, error) {
	return OpenStoreFS(nil, dir, 0)
}

// OpenStoreFS opens (creating if needed) a store rooted at dir, performing
// every file operation through fsys (nil means the real disk). maxBytes > 0
// caps the resident document bytes; the store evicts least-recently-used
// documents to stay under it. The initial recency order is the directory's
// lexicographic fingerprint order — deterministic across restarts, refined
// by use as documents are read and written.
func OpenStoreFS(fsys storage.FS, dir string, maxBytes int64) (*Store, error) {
	fsys = storage.Default(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, fs: fsys, maxBytes: maxBytes, sizes: map[string]int64{}}
	docs, err := fsys.Glob(filepath.Join(dir, "*.doc.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(docs)
	for _, p := range docs {
		fi, err := fsys.Stat(p)
		if err != nil {
			continue
		}
		fp := strings.TrimSuffix(filepath.Base(p), ".doc.json")
		s.lru = append(s.lru, fp)
		s.sizes[fp] = fi.Size()
	}
	return s, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) docPath(fp string) string { return filepath.Join(s.dir, fp+".doc.json") }
func (s *Store) jobPath(fp string) string { return filepath.Join(s.dir, fp+".job.json") }

// JournalPath is where a soak job with this fingerprint checkpoints; kept
// inside the store so crash recovery and result memoization share one
// directory.
func (s *Store) JournalPath(fp string) string { return filepath.Join(s.dir, fp+".soak.journal") }

// touch moves fp to the most-recently-used end of the LRU order, adding it
// if absent, and records its size.
func (s *Store) touch(fp string, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, f := range s.lru {
		if f == fp {
			s.lru = append(s.lru[:i], s.lru[i+1:]...)
			break
		}
	}
	s.lru = append(s.lru, fp)
	s.sizes[fp] = size
}

// forget removes fp from the LRU index.
func (s *Store) forget(fp string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, f := range s.lru {
		if f == fp {
			s.lru = append(s.lru[:i], s.lru[i+1:]...)
			break
		}
	}
	delete(s.sizes, fp)
}

// Bytes reports the resident document bytes, the configured cap (0 =
// uncapped), and the eviction counters since open.
func (s *Store) Bytes() (resident, capBytes, evicted, freed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range s.sizes {
		resident += n
	}
	return resident, s.maxBytes, s.evicted, s.freed
}

// evict removes least-recently-used documents until resident bytes fit
// under the cap. keep is the fingerprint just written — never evicted, even
// if it alone exceeds the cap (a stored result must survive its own Put).
// Fingerprints with a journaled pending job are skipped too: their document
// is the answer an admitted client is still waiting to fetch. Each eviction
// is one atomic Remove, so a crash mid-evict leaves every remaining
// document intact and byte-identical — the enumeration test asserts this.
func (s *Store) evict(keep string) error {
	if s.maxBytes <= 0 {
		return nil
	}
	s.mu.Lock()
	total := int64(0)
	for _, n := range s.sizes {
		total += n
	}
	type victim struct {
		fp   string
		size int64
	}
	var victims []victim
	for _, fp := range s.lru {
		if total <= s.maxBytes {
			break
		}
		if fp == keep {
			continue
		}
		if _, err := s.fs.Stat(s.jobPath(fp)); err == nil {
			continue // journaled-but-unserved: never evict
		}
		victims = append(victims, victim{fp, s.sizes[fp]})
		total -= s.sizes[fp]
	}
	s.mu.Unlock()
	for _, v := range victims {
		if err := s.fs.Remove(s.docPath(v.fp)); err != nil && !os.IsNotExist(err) {
			return &soak.JournalError{Path: s.docPath(v.fp), Reason: "io", Err: err}
		}
		s.forget(v.fp)
		s.mu.Lock()
		s.evicted++
		s.freed += v.size
		s.mu.Unlock()
	}
	return nil
}

// Get returns the memoized document for a fingerprint: (nil, nil) on a
// miss, the exact bytes Put stored on a hit, and a *soak.JournalError for
// a tampered or torn entry. The document is stored compacted inside the
// envelope and re-indented here; because the library's Document.Marshal
// output is deterministic indented JSON, the round trip is byte-exact (a
// tested invariant). A hit refreshes the entry's LRU recency.
func (s *Store) Get(fp string) ([]byte, error) {
	raw, err := soak.LoadEnvelopeFS(s.fs, s.docPath(fp), docMagic, storeSchema, 0, fp)
	if err != nil {
		var je *soak.JournalError
		if errors.As(err, &je) && je.Reason == "missing" {
			return nil, nil
		}
		return nil, err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		return nil, &soak.JournalError{Path: s.docPath(fp), Reason: "corrupt", Err: err}
	}
	buf.WriteByte('\n')
	if fi, err := s.fs.Stat(s.docPath(fp)); err == nil {
		s.touch(fp, fi.Size())
	}
	return buf.Bytes(), nil
}

// Put memoizes a completed document under its fingerprint, then evicts
// least-recently-used documents if the store exceeds its byte cap.
func (s *Store) Put(fp string, doc []byte) error {
	if err := soak.SaveEnvelopeFS(s.fs, s.docPath(fp), docMagic, storeSchema, 0, fp, json.RawMessage(doc)); err != nil {
		return err
	}
	size := int64(0)
	if fi, err := s.fs.Stat(s.docPath(fp)); err == nil {
		size = fi.Size()
	}
	s.touch(fp, size)
	return s.evict(fp)
}

// PutJob journals an admitted job so a crashed daemon can replay it.
func (s *Store) PutJob(fp string, spec Spec) error {
	return soak.SaveEnvelopeFS(s.fs, s.jobPath(fp), jobMagic, storeSchema, 0, fp, spec)
}

// DropJob removes a finished job's journal entry (missing is fine).
func (s *Store) DropJob(fp string) {
	if err := s.fs.Remove(s.jobPath(fp)); err != nil && !os.IsNotExist(err) {
		// Best-effort: a stale job file is re-dropped on the next
		// recovery pass when its document is found present.
		_ = err
	}
}

// DropJournal removes a finished soak job's checkpoint (missing is fine).
func (s *Store) DropJournal(fp string) {
	if err := s.fs.Remove(s.JournalPath(fp)); err != nil && !os.IsNotExist(err) {
		_ = err
	}
}

// Recover replays the store after a restart: torn temp files are removed,
// job entries whose document already exists are dropped (the crash hit
// between persist and cleanup), unreadable or empty job entries are
// discarded, entries whose spec no longer validates under this binary's
// schema are dropped (schema drift is a clean sweep, not a panic), orphan
// soak checkpoints with no surviving job are swept, and the remaining
// admitted-but-unfinished jobs are returned in fingerprint order for
// re-execution.
func (s *Store) Recover() ([]RecoveredJob, error) {
	tmps, err := s.fs.Glob(filepath.Join(s.dir, "*.tmp"))
	if err != nil {
		return nil, err
	}
	for _, p := range tmps {
		if err := s.fs.Remove(p); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	jobs, err := s.fs.Glob(filepath.Join(s.dir, "*.job.json"))
	if err != nil {
		return nil, err
	}
	pending := map[string]bool{}
	var out []RecoveredJob
	for _, p := range jobs {
		fp := strings.TrimSuffix(filepath.Base(p), ".job.json")
		if _, err := s.fs.Stat(s.docPath(fp)); err == nil {
			s.DropJob(fp)
			continue
		}
		raw, err := soak.LoadEnvelopeFS(s.fs, p, jobMagic, storeSchema, 0, fp)
		if err != nil {
			// A torn, empty, or tampered job entry cannot be replayed;
			// drop it rather than wedge startup. The client that
			// submitted it will resubmit and be treated as a fresh
			// request.
			s.DropJob(fp)
			continue
		}
		var spec Spec
		if err := json.Unmarshal(raw, &spec); err != nil {
			s.DropJob(fp)
			continue
		}
		if err := spec.Normalized().Validate(); err != nil {
			// Schema drift: the journaled spec no longer canonicalizes
			// under this binary. Sweep it (and any checkpoint it left)
			// instead of replaying a job we cannot honor.
			s.DropJob(fp)
			s.DropJournal(fp)
			continue
		}
		pending[fp] = true
		out = append(out, RecoveredJob{Fingerprint: fp, Spec: spec})
	}
	// Sweep soak checkpoints whose document already exists: the job
	// completed and the crash hit between dropping the job entry and
	// dropping the journal. A journal with neither job nor document is
	// kept — it may be an externally primed resume point, and a later
	// submit will resume (or reject, typed) from it.
	journals, err := s.fs.Glob(filepath.Join(s.dir, "*.soak.journal"))
	if err != nil {
		return nil, err
	}
	for _, p := range journals {
		fp := strings.TrimSuffix(filepath.Base(p), ".soak.journal")
		if pending[fp] {
			continue
		}
		if _, err := s.fs.Stat(s.docPath(fp)); err == nil {
			s.DropJournal(fp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out, nil
}
