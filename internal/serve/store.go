package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/soak"
)

// Store file formats, all carried by the soak journal envelope
// (tmp+rename+CRC32, typed *soak.JournalError on every failure mode).
const (
	// docMagic identifies a memoized result document.
	docMagic = "protolat-serve-doc"
	// jobMagic identifies a journaled pending job.
	jobMagic = "protolat-serve-job"
	// storeSchema versions both formats together.
	storeSchema = 1
)

// Store is the daemon's crash-safe on-disk state: memoized result
// documents keyed by spec fingerprint, journaled pending jobs (written at
// admission, removed at completion), and soak chunk checkpoints. Every
// file is written atomically under the soak journal envelope, so a kill
// -9 at any instant leaves the store replayable: Recover drops torn temp
// files and returns the jobs that were admitted but never finished.
type Store struct {
	dir string
}

// RecoveredJob is one admitted-but-unfinished job replayed from the
// journaled queue after a restart.
type RecoveredJob struct {
	Fingerprint string
	Spec        Spec
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) docPath(fp string) string { return filepath.Join(s.dir, fp+".doc.json") }
func (s *Store) jobPath(fp string) string { return filepath.Join(s.dir, fp+".job.json") }

// JournalPath is where a soak job with this fingerprint checkpoints; kept
// inside the store so crash recovery and result memoization share one
// directory.
func (s *Store) JournalPath(fp string) string { return filepath.Join(s.dir, fp+".soak.journal") }

// Get returns the memoized document for a fingerprint: (nil, nil) on a
// miss, the exact bytes Put stored on a hit, and a *soak.JournalError for
// a tampered or torn entry. The document is stored compacted inside the
// envelope and re-indented here; because the library's Document.Marshal
// output is deterministic indented JSON, the round trip is byte-exact (a
// tested invariant).
func (s *Store) Get(fp string) ([]byte, error) {
	raw, err := soak.LoadEnvelope(s.docPath(fp), docMagic, storeSchema, 0, fp)
	if err != nil {
		var je *soak.JournalError
		if errors.As(err, &je) && je.Reason == "missing" {
			return nil, nil
		}
		return nil, err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		return nil, &soak.JournalError{Path: s.docPath(fp), Reason: "corrupt", Err: err}
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// Put memoizes a completed document under its fingerprint.
func (s *Store) Put(fp string, doc []byte) error {
	return soak.SaveEnvelope(s.docPath(fp), docMagic, storeSchema, 0, fp, json.RawMessage(doc))
}

// PutJob journals an admitted job so a crashed daemon can replay it.
func (s *Store) PutJob(fp string, spec Spec) error {
	return soak.SaveEnvelope(s.jobPath(fp), jobMagic, storeSchema, 0, fp, spec)
}

// DropJob removes a finished job's journal entry (missing is fine).
func (s *Store) DropJob(fp string) {
	if err := os.Remove(s.jobPath(fp)); err != nil && !os.IsNotExist(err) {
		// Best-effort: a stale job file is re-dropped on the next
		// recovery pass when its document is found present.
		_ = err
	}
}

// DropJournal removes a finished soak job's checkpoint (missing is fine).
func (s *Store) DropJournal(fp string) {
	if err := os.Remove(s.JournalPath(fp)); err != nil && !os.IsNotExist(err) {
		_ = err
	}
}

// Recover replays the store after a restart: torn temp files are removed,
// job entries whose document already exists are dropped (the crash hit
// between persist and cleanup), unreadable job entries are discarded, and
// the remaining admitted-but-unfinished jobs are returned in fingerprint
// order for re-execution.
func (s *Store) Recover() ([]RecoveredJob, error) {
	tmps, err := filepath.Glob(filepath.Join(s.dir, "*.tmp"))
	if err != nil {
		return nil, err
	}
	for _, p := range tmps {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	jobs, err := filepath.Glob(filepath.Join(s.dir, "*.job.json"))
	if err != nil {
		return nil, err
	}
	var out []RecoveredJob
	for _, p := range jobs {
		fp := strings.TrimSuffix(filepath.Base(p), ".job.json")
		if _, err := os.Stat(s.docPath(fp)); err == nil {
			s.DropJob(fp)
			continue
		}
		raw, err := soak.LoadEnvelope(p, jobMagic, storeSchema, 0, fp)
		if err != nil {
			// A torn or tampered job entry cannot be replayed; drop it
			// rather than wedge startup. The client that submitted it
			// will resubmit and be treated as a fresh request.
			s.DropJob(fp)
			continue
		}
		var spec Spec
		if err := json.Unmarshal(raw, &spec); err != nil {
			s.DropJob(fp)
			continue
		}
		out = append(out, RecoveredJob{Fingerprint: fp, Spec: spec})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out, nil
}
