package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// SubmitOptions shapes a client-side submission. The zero value submits
// once with no retries — exactly the pre-retry CLI behavior.
type SubmitOptions struct {
	// Retries is how many times a 429/503 rejection is retried after
	// honoring the server's backoff hint (0 = fail on the first
	// rejection).
	Retries int
	// Sleep is the delay function (nil = time.Sleep); tests inject a
	// recorder here to assert the backoff schedule without waiting it.
	Sleep func(time.Duration)
	// Client is the HTTP client to use (nil = http.DefaultClient).
	Client *http.Client
}

// SubmitResult is a successful submission's payload and identity headers.
type SubmitResult struct {
	// Body is the experiment document.
	Body []byte
	// Fingerprint and Cache echo the X-Protolat-Fingerprint and
	// X-Protolat-Cache response headers.
	Fingerprint string
	Cache       string
}

// defaultRetryMS is the backoff base when a retryable rejection carries no
// usable hint.
const defaultRetryMS = 250

// maxRetryMS caps any single backoff delay.
const maxRetryMS = 30000

// retryDelayMS computes the deterministic capped exponential backoff for
// a retry attempt (0-based): the server's hint doubled per attempt, capped
// at maxRetryMS. The hint already carries the server's fingerprint-derived
// jitter, so two clients with different specs stay spread out without any
// client-side randomness.
func retryDelayMS(hintMS, attempt int) int {
	if hintMS <= 0 {
		hintMS = defaultRetryMS
	}
	if attempt > 10 {
		attempt = 10
	}
	ms := hintMS << uint(attempt)
	if ms > maxRetryMS || ms <= 0 {
		ms = maxRetryMS
	}
	return ms
}

// retryHintMS extracts the server's backoff hint from a rejection: the
// retry_after_ms field of the JSON error body when present, else the
// Retry-After header (whole seconds), else 0.
func retryHintMS(resp *http.Response, body []byte) int {
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.RetryAfterMS > 0 {
		return eb.RetryAfterMS
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if sec, err := strconv.Atoi(s); err == nil && sec > 0 {
			return sec * 1000
		}
	}
	return 0
}

// Submit posts a spec to a daemon's /v1/experiments endpoint and returns
// the document. Retryable rejections — 429 backpressure and 503 drain —
// are retried up to opts.Retries times, honoring the server's Retry-After
// hint with capped deterministic exponential backoff; every other non-200
// status fails immediately with the server's error text.
func Submit(addr string, spec []byte, opts SubmitOptions) (*SubmitResult, error) {
	sleep := opts.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	url := "http://" + addr + "/v1/experiments"
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(spec))
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusOK {
			return &SubmitResult{
				Body:        body,
				Fingerprint: resp.Header.Get("X-Protolat-Fingerprint"),
				Cache:       resp.Header.Get("X-Protolat-Cache"),
			}, nil
		}
		retryable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if !retryable || attempt >= opts.Retries {
			msg := fmt.Sprintf("daemon returned %s: %s", resp.Status, bytes.TrimSpace(body))
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				msg += fmt.Sprintf(" (Retry-After: %ss)", ra)
			}
			if retryable && opts.Retries > 0 {
				msg += fmt.Sprintf(" after %d retries", opts.Retries)
			}
			return nil, fmt.Errorf("%s", msg)
		}
		sleep(time.Duration(retryDelayMS(retryHintMS(resp, body), attempt)) * time.Millisecond)
	}
}
