package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/soak"
	"repro/internal/storage"
)

// testDoc builds a deterministic fake document payload of roughly the
// requested size, shaped like the JSON the store expects.
func testDoc(tag string, size int) []byte {
	pad := strings.Repeat("x", size)
	return []byte(fmt.Sprintf(`{"tag":%q,"pad":%q}`, tag, pad))
}

// storeState reads every memoizable fingerprint's Get result so crash
// tests can compare recovered stores value by value.
func storeState(t *testing.T, st *Store, fps []string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, fp := range fps {
		doc, err := st.Get(fp)
		if err != nil {
			t.Fatalf("Get(%s): %v", fp, err)
		}
		if doc != nil {
			out[fp] = doc
		}
	}
	return out
}

// TestRunJobStoreCrashEnumeration is the tentpole claim for the daemon's
// write path: crash after every FS operation in a full job lifecycle
// (journal the job, persist the document, drop the journal entries) and
// assert that a restarted store always recovers to a coherent state — the
// document is either absent or byte-identical to the reference, never a
// readable blend, and Recover itself never errors or panics.
func TestRunJobStoreCrashEnumeration(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point enumeration is the slow exhaustive path")
	}
	const fp = "deadbeefcafe0001"
	spec := Spec{Kind: "lint"}.Normalized()

	// Reference: the workload on a clean FS.
	refFS := storage.NewMemFS()
	refStore, err := OpenStoreFS(refFS, "store", 0)
	if err != nil {
		t.Fatalf("reference store: %v", err)
	}
	doc := testDoc("job", 64)
	if err := refStore.PutJob(fp, spec); err != nil {
		t.Fatalf("reference PutJob: %v", err)
	}
	if err := refStore.Put(fp, doc); err != nil {
		t.Fatalf("reference Put: %v", err)
	}
	refStore.DropJob(fp)
	refStore.DropJournal(fp)
	refDoc, err := refStore.Get(fp)
	if err != nil || refDoc == nil {
		t.Fatalf("reference Get: %v", err)
	}

	workload := func(fsys storage.FS) error {
		st, err := OpenStoreFS(fsys, "store", 0)
		if err != nil {
			return err
		}
		if err := st.PutJob(fp, spec); err != nil {
			return err
		}
		if err := st.Put(fp, doc); err != nil {
			return err
		}
		st.DropJob(fp)
		st.DropJournal(fp)
		return nil
	}
	sawPre, sawPost := false, false
	n, err := storage.Enumerate(storage.NewMemFS(), 31, workload, func(k int, crashed *storage.MemFS) error {
		st, err := OpenStoreFS(crashed, "store", 0)
		if err != nil {
			t.Fatalf("crash at op %d: reopen: %v", k, err)
		}
		jobs, err := st.Recover()
		if err != nil {
			t.Fatalf("crash at op %d: Recover: %v", k, err)
		}
		got, err := st.Get(fp)
		if err != nil {
			t.Fatalf("crash at op %d: Get after recovery: %v", k, err)
		}
		switch {
		case got == nil:
			// Pre-persist state: if the job journal survived, recovery
			// must replay exactly this job.
			sawPre = true
			for _, j := range jobs {
				if j.Fingerprint != fp {
					t.Fatalf("crash at op %d: recovered alien job %s", k, j.Fingerprint)
				}
			}
		case bytes.Equal(got, refDoc):
			sawPost = true
			if len(jobs) != 0 {
				t.Fatalf("crash at op %d: document persisted but job still pending", k)
			}
		default:
			t.Fatalf("crash at op %d: third outcome: recovered document differs from reference", k)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	if n < 10 {
		t.Fatalf("workload performed only %d FS ops; the lifecycle should be longer", n)
	}
	if !sawPre || !sawPost {
		t.Fatalf("enumeration never saw both sides of the persist (pre=%v post=%v)", sawPre, sawPost)
	}
}

// TestEvictionCrashEnumeration: eviction under a byte cap is itself
// crash-safe — crash after every FS op of an evicting Put and every
// surviving document must read back byte-identical to its reference value
// or be cleanly absent, and a journaled-but-unserved job's document always
// survives.
func TestEvictionCrashEnumeration(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point enumeration is the slow exhaustive path")
	}
	fps := []string{"aaaa000000000001", "bbbb000000000002", "cccc000000000003"}
	docs := map[string][]byte{
		fps[0]: testDoc("a", 200),
		fps[1]: testDoc("b", 200),
		fps[2]: testDoc("c", 200),
	}
	pinned := fps[0] // has a live job journal: never evictable
	spec := Spec{Kind: "lint"}.Normalized()

	// Base state: two resident docs (one pinned by a pending job), cap
	// sized so adding the third forces an eviction.
	base := storage.NewMemFS()
	seed, err := OpenStoreFS(base, "store", 0)
	if err != nil {
		t.Fatalf("seed store: %v", err)
	}
	if err := seed.Put(fps[0], docs[fps[0]]); err != nil {
		t.Fatalf("seed put: %v", err)
	}
	if err := seed.Put(fps[1], docs[fps[1]]); err != nil {
		t.Fatalf("seed put: %v", err)
	}
	if err := seed.PutJob(pinned, spec); err != nil {
		t.Fatalf("seed job: %v", err)
	}
	var perDoc int64
	if fi, err := base.Stat(seed.docPath(fps[0])); err == nil {
		perDoc = fi.Size()
	}
	capBytes := perDoc*2 + perDoc/2 // three docs never fit, two do

	refs := storeState(t, seed, fps)

	workload := func(fsys storage.FS) error {
		st, err := OpenStoreFS(fsys, "store", capBytes)
		if err != nil {
			return err
		}
		return st.Put(fps[2], docs[fps[2]])
	}

	// Post-state reference: the workload run undisturbed on a clone gives
	// the exact Get bytes each fingerprint may legally land on.
	postFS := base.Clone()
	if err := workload(postFS); err != nil {
		t.Fatalf("reference workload: %v", err)
	}
	postStore, err := OpenStoreFS(postFS, "store", capBytes)
	if err != nil {
		t.Fatalf("reference reopen: %v", err)
	}
	post := storeState(t, postStore, fps)
	if post[fps[1]] != nil {
		t.Fatal("reference workload did not evict the LRU entry")
	}

	n, err := storage.Enumerate(base, 41, workload, func(k int, crashed *storage.MemFS) error {
		st, err := OpenStoreFS(crashed, "store", capBytes)
		if err != nil {
			t.Fatalf("crash at op %d: reopen: %v", k, err)
		}
		if _, err := st.Recover(); err != nil {
			t.Fatalf("crash at op %d: Recover: %v", k, err)
		}
		for _, fp := range fps {
			got, err := st.Get(fp)
			if err != nil {
				t.Fatalf("crash at op %d: Get(%s): %v", k, fp, err)
			}
			// Every fingerprint must read back as its pre-workload bytes,
			// its post-workload bytes, or be cleanly absent (if absence is
			// a legal pre or post state for it) — never a blend.
			switch {
			case got == nil:
				if refs[fp] != nil && post[fp] != nil {
					t.Fatalf("crash at op %d: %s lost (present in both pre and post state)", k, fp)
				}
			case bytes.Equal(got, refs[fp]) || bytes.Equal(got, post[fp]):
			default:
				t.Fatalf("crash at op %d: %s recovered to a third state", k, fp)
			}
		}
		pinDoc, err := st.Get(pinned)
		if err != nil {
			t.Fatalf("crash at op %d: Get(pinned): %v", k, err)
		}
		if pinDoc == nil {
			t.Fatalf("crash at op %d: eviction removed a journaled-but-unserved job's document", k)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	if n < 5 {
		t.Fatalf("evicting Put performed only %d FS ops", n)
	}
}

// TestStoreEvictionLRU: filling a capped store evicts the least recently
// used document — recency refreshed by Get — while survivors still serve
// byte-identically and the eviction counters account for what left.
func TestStoreEvictionLRU(t *testing.T) {
	mem := storage.NewMemFS()
	st, err := OpenStoreFS(mem, "store", 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fps := []string{"aaaa000000000001", "bbbb000000000002", "cccc000000000003"}
	for _, fp := range fps[:2] {
		if err := st.Put(fp, testDoc(fp[:4], 200)); err != nil {
			t.Fatalf("put %s: %v", fp, err)
		}
	}
	var perDoc int64
	if fi, err := mem.Stat(st.docPath(fps[0])); err == nil {
		perDoc = fi.Size()
	}

	// Reopen with a two-doc cap; initial recency is lexicographic, then
	// a Get refreshes A so B becomes the LRU victim.
	st, err = OpenStoreFS(mem, "store", perDoc*2+perDoc/2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	refA, err := st.Get(fps[0])
	if err != nil || refA == nil {
		t.Fatalf("Get A: %v", err)
	}
	if err := st.Put(fps[2], testDoc("cccc", 200)); err != nil {
		t.Fatalf("put C: %v", err)
	}
	if doc, err := st.Get(fps[1]); err != nil || doc != nil {
		t.Fatalf("LRU victim B still resident (doc=%v err=%v)", doc != nil, err)
	}
	gotA, err := st.Get(fps[0])
	if err != nil || !bytes.Equal(gotA, refA) {
		t.Fatalf("survivor A no longer serves byte-identically (err %v)", err)
	}
	if doc, err := st.Get(fps[2]); err != nil || doc == nil {
		t.Fatalf("just-written C missing (err %v)", err)
	}
	resident, capBytes, evicted, freed := st.Bytes()
	if evicted != 1 || freed <= 0 {
		t.Fatalf("eviction counters: evicted=%d freed=%d", evicted, freed)
	}
	if resident > capBytes {
		t.Fatalf("resident %d still exceeds cap %d", resident, capBytes)
	}
}

// TestWorkersByteIdentical is the multi-worker acceptance criterion: a
// batch of distinct specs submitted to a 4-worker daemon produces
// documents byte-identical to a single-worker daemon's, and the stats
// ledger still balances.
func TestWorkersByteIdentical(t *testing.T) {
	specs := []string{
		`{"kind":"run","version":"STD","samples":1}`,
		`{"kind":"run","version":"ALL","samples":1}`,
		`{"kind":"run","version":"STD","samples":2}`,
		`{"kind":"run","version":"PIN","samples":1}`,
		`{"kind":"lint"}`,
	}

	_, ref := newTestServer(t, Config{Workers: 1})
	want := map[string][]byte{}
	for _, spec := range specs {
		resp, body := post(t, ref, spec)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=1 %s: %s: %s", spec, resp.Status, body)
		}
		want[spec] = body
	}

	s4, ts4 := newTestServer(t, Config{Workers: 4})
	var wg sync.WaitGroup
	var mu sync.Mutex
	got := map[string][]byte{}
	for _, spec := range specs {
		wg.Add(1)
		go func(spec string) {
			defer wg.Done()
			resp, err := http.Post(ts4.URL+"/v1/experiments", "application/json", strings.NewReader(spec))
			if err != nil {
				t.Errorf("workers=4 %s: %v", spec, err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("workers=4 %s: %s: %s", spec, resp.Status, buf.String())
				return
			}
			mu.Lock()
			got[spec] = buf.Bytes()
			mu.Unlock()
		}(spec)
	}
	wg.Wait()
	for _, spec := range specs {
		if !bytes.Equal(want[spec], got[spec]) {
			t.Fatalf("workers=4 document for %s differs from workers=1", spec)
		}
	}
	st := s4.Stats()
	if st.Workers != 4 {
		t.Fatalf("stats workers = %d, want 4", st.Workers)
	}
	if st.Completed+st.Failed != st.Accepted+st.Coalesced {
		t.Fatalf("stats ledger unbalanced: %+v", st)
	}
}

// TestWatchdogHungJob: a job that ignores cancellation past the watchdog
// and its grace period is abandoned with a typed 504 "watchdog" response,
// counted in stats, and leaves its journal entry for restart replay.
func TestWatchdogHungJob(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	s, ts := newTestServer(t, Config{JobWatchdog: 30 * time.Millisecond})
	s.beforeRun = func(j *job) { <-release } // ignores cancellation entirely

	resp, body := post(t, ts, lintSpec)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("hung job: %s: %s", resp.Status, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Reason != "watchdog" {
		t.Fatalf("hung job reason = %q (err %v), want watchdog", eb.Reason, err)
	}
	st := s.Stats()
	if st.HungJobs != 1 || st.Failed != 1 {
		t.Fatalf("stats after hang: hung=%d failed=%d", st.HungJobs, st.Failed)
	}
	fp := resp.Header.Get("X-Protolat-Fingerprint")
	if _, err := s.store.fs.Stat(s.store.jobPath(fp)); err != nil {
		t.Fatalf("hung job's journal entry was dropped: %v", err)
	}
}

// TestDaemonENOSPCDegraded: an injected ENOSPC on document writes pushes
// the full daemon path into degraded persistence — the result still
// serves, flagged, and the journal entry survives for recomputation.
func TestDaemonENOSPCDegraded(t *testing.T) {
	fault, err := storage.FromEnv("enospc=*.doc.json*")
	if err != nil {
		t.Fatalf("FromEnv: %v", err)
	}
	s, ts := newTestServer(t, Config{FS: fault})
	resp, body := post(t, ts, lintSpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit under ENOSPC: %s: %s", resp.Status, body)
	}
	if resp.Header.Get("X-Protolat-Degraded") != "store" {
		t.Fatal("ENOSPC persist not flagged degraded")
	}
	st := s.Stats()
	if st.DegradedPersists != 1 {
		t.Fatalf("degraded_persists = %d, want 1", st.DegradedPersists)
	}
	fp := resp.Header.Get("X-Protolat-Fingerprint")
	if _, err := s.store.fs.Stat(s.store.jobPath(fp)); err != nil {
		t.Fatalf("degraded job's journal entry missing: %v", err)
	}
}

// TestRecoverEdgeCases: the startup sweep survives every malformed
// leftover the crash model can produce — multiple torn temp files from
// distinct fingerprints, a journaled spec that no longer validates under
// this binary (schema drift), and 0-byte envelopes — with typed errors or
// clean sweeps, never a panic.
func TestRecoverEdgeCases(t *testing.T) {
	mem := storage.NewMemFS()
	st, err := OpenStoreFS(mem, "store", 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// Two torn temp files from distinct fingerprints.
	for _, name := range []string{"store/aaaa000000000001.doc.json.tmp", "store/bbbb000000000002.job.json.tmp"} {
		if err := mem.WriteFile(name, []byte(`{"torn`), 0o644); err != nil {
			t.Fatalf("plant %s: %v", name, err)
		}
	}
	// A journaled job whose spec parses but no longer canonicalizes
	// (schema drift), plus the checkpoint it left behind.
	driftFP := "cccc000000000003"
	driftSpec := Spec{Kind: "run", Version: "NOPE"}
	if err := soak.SaveEnvelopeFS(mem, st.jobPath(driftFP), jobMagic, storeSchema, 0, driftFP, driftSpec); err != nil {
		t.Fatalf("plant drift job: %v", err)
	}
	if err := mem.WriteFile(st.JournalPath(driftFP), []byte("{}"), 0o644); err != nil {
		t.Fatalf("plant drift journal: %v", err)
	}
	// A 0-byte job envelope and a 0-byte document envelope.
	emptyJobFP := "dddd000000000004"
	emptyDocFP := "eeee000000000005"
	if err := mem.WriteFile(st.jobPath(emptyJobFP), nil, 0o644); err != nil {
		t.Fatalf("plant empty job: %v", err)
	}
	if err := mem.WriteFile(st.docPath(emptyDocFP), nil, 0o644); err != nil {
		t.Fatalf("plant empty doc: %v", err)
	}
	// One healthy pending job that must survive all of the above.
	goodFP := "ffff000000000006"
	if err := st.PutJob(goodFP, Spec{Kind: "lint"}.Normalized()); err != nil {
		t.Fatalf("plant good job: %v", err)
	}

	jobs, err := st.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(jobs) != 1 || jobs[0].Fingerprint != goodFP {
		t.Fatalf("recovered jobs = %+v, want exactly %s", jobs, goodFP)
	}
	if tmps, _ := mem.Glob("store/*.tmp"); len(tmps) != 0 {
		t.Fatalf("torn temp files survived recovery: %v", tmps)
	}
	for _, p := range []string{st.jobPath(driftFP), st.JournalPath(driftFP), st.jobPath(emptyJobFP)} {
		if _, err := mem.Stat(p); err == nil {
			t.Fatalf("%s survived recovery", p)
		}
	}
	// The empty document envelope is a typed corrupt error on read —
	// never a panic, never silently served.
	_, gerr := st.Get(emptyDocFP)
	var je *soak.JournalError
	if !errors.As(gerr, &je) || je.Reason != "corrupt" {
		t.Fatalf("empty doc Get = %v, want JournalError{corrupt}", gerr)
	}
}

// TestSubmitRetryFlaky: the retry client follows the server's Retry-After
// hints with capped exponential backoff against a scripted flaky server,
// and with Retries=0 preserves the old fail-fast behavior.
func TestSubmitRetryFlaky(t *testing.T) {
	var calls int
	var failAll bool
	var mu sync.Mutex
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		always := failAll
		mu.Unlock()
		switch {
		case always || n == 1:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(errorBody{Error: "queue full", Reason: "backpressure", RetryAfterMS: 100})
		case n == 2:
			// Header-only hint: no JSON body.
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining"))
		default:
			w.Header().Set("X-Protolat-Fingerprint", "feed000000000001")
			w.Header().Set("X-Protolat-Cache", "computed")
			w.Write([]byte(`{"ok":true}`))
		}
	}))
	defer flaky.Close()
	addr := strings.TrimPrefix(flaky.URL, "http://")

	var delays []time.Duration
	res, err := Submit(addr, []byte(lintSpec), SubmitOptions{
		Retries: 3,
		Sleep:   func(d time.Duration) { delays = append(delays, d) },
	})
	if err != nil {
		t.Fatalf("Submit with retries: %v", err)
	}
	if string(res.Body) != `{"ok":true}` || res.Cache != "computed" {
		t.Fatalf("result = %+v", res)
	}
	// Attempt 0 slept the body hint (100ms << 0); attempt 1 had only the
	// header hint (1s << 1).
	want := []time.Duration{100 * time.Millisecond, 2 * time.Second}
	if len(delays) != len(want) || delays[0] != want[0] || delays[1] != want[1] {
		t.Fatalf("backoff schedule = %v, want %v", delays, want)
	}

	// Retries=0 fails on the first rejection, surfacing the hint.
	mu.Lock()
	calls = 0
	mu.Unlock()
	_, err = Submit(addr, []byte(lintSpec), SubmitOptions{
		Sleep: func(d time.Duration) { t.Fatalf("Retries=0 slept %v", d) },
	})
	if err == nil || !strings.Contains(err.Error(), "Retry-After") {
		t.Fatalf("Retries=0 error = %v, want immediate failure with hint", err)
	}

	// Exhausted retries fail with the count in the message.
	mu.Lock()
	failAll = true
	mu.Unlock()
	var n2 int
	_, err = Submit(addr, []byte(lintSpec), SubmitOptions{
		Retries: 2,
		Sleep:   func(time.Duration) { n2++ },
	})
	if err == nil || !strings.Contains(err.Error(), "after 2 retries") {
		t.Fatalf("exhausted retries error = %v", err)
	}
	if n2 != 2 {
		t.Fatalf("slept %d times, want 2", n2)
	}
}

// TestRetryDelayMS: the backoff math is deterministic, hint-seeded, and
// capped.
func TestRetryDelayMS(t *testing.T) {
	for _, tc := range []struct {
		hint, attempt, want int
	}{
		{0, 0, 250},       // no hint: default base
		{100, 0, 100},     // hint passes through on the first retry
		{100, 3, 800},     // doubles per attempt
		{30000, 1, 30000}, // capped
		{1000, 20, 30000}, // huge attempt counts saturate, no overflow
	} {
		if got := retryDelayMS(tc.hint, tc.attempt); got != tc.want {
			t.Fatalf("retryDelayMS(%d, %d) = %d, want %d", tc.hint, tc.attempt, got, tc.want)
		}
	}
}
