// Package mem simulates the DEC 3000/600 memory hierarchy: direct-mapped
// split first-level caches, a 4-deep write-merging write buffer, a unified
// direct-mapped b-cache, and main memory, with the single-entry sequential
// instruction stream buffer that makes sequential code layouts profitable.
//
// The simulator classifies every miss as either a cold miss (first touch of
// the block within the current measurement epoch) or a replacement miss (the
// block was resident earlier in the epoch and was evicted by a conflicting
// block), matching the methodology behind Table 6 of the paper.
package mem

import "fmt"

// Stats counts the accesses observed by one level of the hierarchy during
// the current measurement epoch.
type Stats struct {
	// Accesses is the total number of references presented to this level.
	Accesses uint64
	// Misses is the number of references not satisfied by this level.
	// For the combined d-cache/write-buffer statistics a merged write
	// counts as a hit and an unmerged write as a miss, as in the paper.
	Misses uint64
	// ReplMisses is the subset of Misses whose block had been resident
	// earlier in the epoch: a conflict (replacement) miss rather than a
	// cold miss.
	ReplMisses uint64
}

// Hits returns Accesses - Misses.
func (s Stats) Hits() uint64 { return s.Accesses - s.Misses }

// Sub returns the element-wise difference s - o, useful for per-phase stats.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Accesses:   s.Accesses - o.Accesses,
		Misses:     s.Misses - o.Misses,
		ReplMisses: s.ReplMisses - o.ReplMisses,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("acc=%d miss=%d repl=%d", s.Accesses, s.Misses, s.ReplMisses)
}

// cache is one set-associative (LRU) cache level; associativity 1 gives
// the DEC 3000/600's direct-mapped behaviour.
type cache struct {
	blockShift uint
	setMask    uint64
	assoc      int
	// ways[set] holds the resident block numbers of a set in LRU order:
	// index 0 is the most recently used way.
	ways [][]uint64
	// seen records every block number touched this epoch, for
	// classifying misses as cold vs. replacement.
	seen map[uint64]struct{}
}

func newCache(sizeBytes, blockBytes, assoc int) *cache {
	if assoc < 1 {
		assoc = 1
	}
	sets := sizeBytes / blockBytes / assoc
	shift := uint(0)
	for 1<<shift != blockBytes {
		shift++
	}
	return &cache{
		blockShift: shift,
		setMask:    uint64(sets - 1),
		assoc:      assoc,
		ways:       make([][]uint64, sets),
		seen:       make(map[uint64]struct{}),
	}
}

func (c *cache) block(addr uint64) uint64 { return addr >> c.blockShift }

// present reports whether the block containing addr is resident, without
// touching statistics, contents, or LRU order.
func (c *cache) present(addr uint64) bool {
	b := c.block(addr)
	for _, w := range c.ways[b&c.setMask] {
		if w == b {
			return true
		}
	}
	return false
}

// access looks up the block containing addr, filling it on a miss (evicting
// the LRU way when the set is full). It reports whether the access hit and,
// on a miss, whether the miss is a replacement miss (block was resident
// earlier this epoch).
func (c *cache) access(addr uint64) (hit, repl bool) {
	b := c.block(addr)
	set := b & c.setMask
	wl := c.ways[set]
	for i, w := range wl {
		if w == b {
			// Move to the MRU position.
			copy(wl[1:i+1], wl[:i])
			wl[0] = b
			return true, false
		}
	}
	_, seenBefore := c.seen[b]
	c.seen[b] = struct{}{}
	if len(wl) < c.assoc {
		wl = append(wl, 0)
	}
	copy(wl[1:], wl)
	wl[0] = b
	c.ways[set] = wl
	return false, seenBefore
}

// beginEpoch forgets the miss-classification history but keeps contents, so
// that a measurement epoch starts with warm caches and zero counters.
func (c *cache) beginEpoch() { c.seen = make(map[uint64]struct{}) }

// reset empties the cache entirely (cold start).
func (c *cache) reset() {
	for i := range c.ways {
		c.ways[i] = nil
	}
	c.seen = make(map[uint64]struct{})
}

// writeBuffer models the 21064's 4-deep write buffer. Each entry holds one
// cache block and merges subsequent stores to the same block; entries retire
// to the b-cache one at a time.
type writeBuffer struct {
	entries   []wbEntry
	retireAt  uint64 // virtual cycle when the b-cache port frees up
	retireCyc uint64
}

type wbEntry struct {
	block    uint64
	validAt  bool
	drainsAt uint64 // entry leaves the buffer at this cycle
}

func newWriteBuffer(depth, retireCycles int) *writeBuffer {
	return &writeBuffer{
		entries:   make([]wbEntry, depth),
		retireCyc: uint64(retireCycles),
	}
}

// put records a store to block at time now. It reports whether the store
// merged into an existing entry and how many cycles the CPU stalled waiting
// for a free entry.
func (w *writeBuffer) put(now, block uint64) (merged bool, stall uint64) {
	free := -1
	var earliest uint64
	earliestIdx := -1
	for i := range w.entries {
		e := &w.entries[i]
		if e.validAt && e.drainsAt > now {
			if e.block == block {
				return true, 0
			}
			if earliestIdx < 0 || e.drainsAt < earliest {
				earliest, earliestIdx = e.drainsAt, i
			}
		} else if free < 0 {
			free = i
		}
	}
	if free < 0 {
		// Buffer full: stall until the earliest entry drains.
		stall = earliest - now
		now = earliest
		free = earliestIdx
	}
	if w.retireAt < now {
		w.retireAt = now
	}
	w.retireAt += w.retireCyc
	w.entries[free] = wbEntry{block: block, validAt: true, drainsAt: w.retireAt}
	return false, stall
}

// reset empties the buffer.
func (w *writeBuffer) reset() {
	for i := range w.entries {
		w.entries[i] = wbEntry{}
	}
	w.retireAt = 0
}
