// Package mem simulates the DEC 3000/600 memory hierarchy: direct-mapped
// split first-level caches, a 4-deep write-merging write buffer, a unified
// direct-mapped b-cache, and main memory, with the single-entry sequential
// instruction stream buffer that makes sequential code layouts profitable.
//
// The machine description (internal/arch) can extend the baseline with the
// what-if structures of the machine-model matrix, all disabled on the
// paper's machine: set-associative LRU first-level caches (Assoc > 1), a
// small fully-associative victim buffer behind the i-cache
// (VictimEntries), a unified mid-level cache between the first-level
// caches and the b-cache (L2Bytes), and a write-allocate d-cache policy
// (DCacheWriteAllocate). With every extension disabled the simulated
// behaviour is bit-identical to the original two-level model.
//
// The simulator classifies every miss as either a cold miss (first touch of
// the block within the current measurement epoch) or a replacement miss (the
// block was resident earlier in the epoch and was evicted by a conflicting
// block), matching the methodology behind Table 6 of the paper.
package mem

import "fmt"

// Stats counts the accesses observed by one level of the hierarchy during
// the current measurement epoch.
type Stats struct {
	// Accesses is the total number of references presented to this level.
	Accesses uint64
	// Misses is the number of references not satisfied by this level.
	// For the combined d-cache/write-buffer statistics a merged write
	// counts as a hit and an unmerged write as a miss, as in the paper.
	Misses uint64
	// ReplMisses is the subset of Misses whose block had been resident
	// earlier in the epoch: a conflict (replacement) miss rather than a
	// cold miss.
	ReplMisses uint64
}

// Hits returns Accesses - Misses.
func (s Stats) Hits() uint64 { return s.Accesses - s.Misses }

// Sub returns the element-wise difference s - o, useful for per-phase stats.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Accesses:   s.Accesses - o.Accesses,
		Misses:     s.Misses - o.Misses,
		ReplMisses: s.ReplMisses - o.ReplMisses,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("acc=%d miss=%d repl=%d", s.Accesses, s.Misses, s.ReplMisses)
}

// cache is one set-associative (LRU) cache level; associativity 1 gives
// the DEC 3000/600's direct-mapped behaviour.
//
// Storage is flat and pointer-free: lines holds assoc block numbers per
// set (MRU first), and a line is valid only while its stamp matches the
// cache's current generation. Resetting the cache is a generation bump
// rather than a sweep, so a pooled hierarchy restarts cold in O(1) and the
// backing arrays never re-enter the garbage collector's scan set.
type cache struct {
	blockShift uint
	setMask    uint64
	assoc      uint64
	// lines[set*assoc .. set*assoc+assoc) are the resident block numbers
	// of a set in LRU order (index 0 within the stride is MRU). A slot is
	// valid only if stamps carries the current generation; valid slots
	// always form a prefix of the stride because fills insert at the
	// front.
	lines  []uint64
	stamps []uint32
	gen    uint32
	// seen records every block number missed on this epoch, for
	// classifying later misses as cold vs. replacement.
	seen u64set
}

func newCache(sizeBytes, blockBytes, assoc int) *cache {
	if assoc < 1 {
		assoc = 1
	}
	sets := sizeBytes / blockBytes / assoc
	shift := uint(0)
	for 1<<shift != blockBytes {
		shift++
	}
	c := &cache{
		blockShift: shift,
		setMask:    uint64(sets - 1),
		assoc:      uint64(assoc),
		lines:      make([]uint64, sets*assoc),
		stamps:     make([]uint32, sets*assoc),
		gen:        1,
	}
	c.seen.init(1024)
	return c
}

func (c *cache) block(addr uint64) uint64 { return addr >> c.blockShift }

// present reports whether the block containing addr is resident, without
// touching statistics, contents, or LRU order.
func (c *cache) present(addr uint64) bool {
	b := c.block(addr)
	base := (b & c.setMask) * c.assoc
	for i := uint64(0); i < c.assoc; i++ {
		if c.stamps[base+i] != c.gen {
			return false
		}
		if c.lines[base+i] == b {
			return true
		}
	}
	return false
}

// access looks up the block containing addr, filling it on a miss (evicting
// the LRU way when the set is full). It reports whether the access hit and,
// on a miss, whether the miss is a replacement miss (block was resident
// earlier this epoch).
func (c *cache) access(addr uint64) (hit, repl bool) {
	b := addr >> c.blockShift
	base := (b & c.setMask) * c.assoc
	g := c.gen
	if c.assoc == 1 {
		// Direct-mapped fast path: one compare, no LRU bookkeeping.
		if c.stamps[base] == g && c.lines[base] == b {
			return true, false
		}
		c.lines[base] = b
		c.stamps[base] = g
		return false, c.seen.add(b)
	}
	lines := c.lines[base : base+c.assoc]
	stamps := c.stamps[base : base+c.assoc]
	for i := range lines {
		if stamps[i] != g {
			break
		}
		if lines[i] == b {
			// Move to the MRU position.
			copy(lines[1:i+1], lines[:i])
			lines[0] = b
			return true, false
		}
	}
	seenBefore := c.seen.add(b)
	copy(lines[1:], lines[:c.assoc-1])
	copy(stamps[1:], stamps[:c.assoc-1])
	lines[0] = b
	stamps[0] = g
	return false, seenBefore
}

// accessEvict is access plus eviction reporting: on a miss that displaces
// a resident block, it also returns the displaced block number. It exists
// for cache levels backed by a victim buffer (the evicted block is what
// parks there); it is kept separate from access so the common no-victim
// path stays lean.
func (c *cache) accessEvict(addr uint64) (hit, repl bool, evicted uint64, hasEvict bool) {
	b := addr >> c.blockShift
	base := (b & c.setMask) * c.assoc
	g := c.gen
	if c.assoc == 1 {
		if c.stamps[base] == g {
			if c.lines[base] == b {
				return true, false, 0, false
			}
			evicted, hasEvict = c.lines[base], true
		}
		c.lines[base] = b
		c.stamps[base] = g
		return false, c.seen.add(b), evicted, hasEvict
	}
	lines := c.lines[base : base+c.assoc]
	stamps := c.stamps[base : base+c.assoc]
	for i := range lines {
		if stamps[i] != g {
			break
		}
		if lines[i] == b {
			copy(lines[1:i+1], lines[:i])
			lines[0] = b
			return true, false, 0, false
		}
	}
	if stamps[c.assoc-1] == g {
		// The set is full: the LRU way is about to be displaced.
		evicted, hasEvict = lines[c.assoc-1], true
	}
	seenBefore := c.seen.add(b)
	copy(lines[1:], lines[:c.assoc-1])
	copy(stamps[1:], stamps[:c.assoc-1])
	lines[0] = b
	stamps[0] = g
	return false, seenBefore, evicted, hasEvict
}

// beginEpoch forgets the miss-classification history but keeps contents, so
// that a measurement epoch starts with warm caches and zero counters.
func (c *cache) beginEpoch() { c.seen.clear() }

// reset empties the cache entirely (cold start) by bumping the validity
// generation; the backing arrays are reused untouched.
func (c *cache) reset() {
	c.gen++
	if c.gen == 0 {
		// The 32-bit generation wrapped: stale stamps could alias the new
		// generation, so sweep them once and restart at 1.
		clear(c.stamps)
		c.gen = 1
	}
	c.seen.clear()
}

// u64set is a reusable open-addressing hash set of uint64 keys with
// generation-based O(1) clearing: a slot is live only while its generation
// matches the set's. Stale slots read as empty, which is consistent because
// an entire generation goes stale at once, so probe chains never dangle.
type u64set struct {
	keys []uint64
	gens []uint32
	gen  uint32
	n    int
	mask uint64
}

// init sizes the set; capacity must be a power of two.
func (s *u64set) init(capacity int) {
	s.keys = make([]uint64, capacity)
	s.gens = make([]uint32, capacity)
	s.gen = 1
	s.n = 0
	s.mask = uint64(capacity - 1)
}

// hash64 is a deterministic 64-bit mix (the murmur3 finalizer).
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// add inserts b and reports whether it was already present.
func (s *u64set) add(b uint64) bool {
	if s.n >= len(s.keys)-len(s.keys)/4 {
		s.grow()
	}
	i := hash64(b) & s.mask
	for s.gens[i] == s.gen {
		if s.keys[i] == b {
			return true
		}
		i = (i + 1) & s.mask
	}
	s.keys[i] = b
	s.gens[i] = s.gen
	s.n++
	return false
}

func (s *u64set) grow() {
	oldKeys, oldGens, oldGen := s.keys, s.gens, s.gen
	s.init(len(oldKeys) * 2)
	for i, g := range oldGens {
		if g != oldGen {
			continue
		}
		b := oldKeys[i]
		j := hash64(b) & s.mask
		for s.gens[j] == s.gen {
			j = (j + 1) & s.mask
		}
		s.keys[j] = b
		s.gens[j] = s.gen
		s.n++
	}
}

// clear empties the set in O(1) by bumping the generation.
func (s *u64set) clear() {
	s.n = 0
	s.gen++
	if s.gen == 0 {
		clear(s.gens)
		s.gen = 1
	}
}

// victimBuffer is a small fully-associative LRU buffer of blocks recently
// evicted from a cache (Jouppi's victim cache, ISCA 1990). take removes a
// block on a hit — the classic swap back into the main cache — and put
// parks a newly evicted block at the MRU position, dropping the LRU one
// when full. Capacities are a handful of entries, so linear probes are
// cheaper than any indexing structure.
type victimBuffer struct {
	blocks []uint64
	n      int // live entries occupy blocks[:n]
}

func newVictimBuffer(entries int) *victimBuffer {
	return &victimBuffer{blocks: make([]uint64, entries)}
}

// take removes block b if present, reporting whether it was found.
func (v *victimBuffer) take(b uint64) bool {
	for i := 0; i < v.n; i++ {
		if v.blocks[i] == b {
			copy(v.blocks[i:], v.blocks[i+1:v.n])
			v.n--
			return true
		}
	}
	return false
}

// put inserts b at the MRU position, evicting the LRU entry when full.
func (v *victimBuffer) put(b uint64) {
	if v.n < len(v.blocks) {
		v.n++
	}
	copy(v.blocks[1:v.n], v.blocks[:v.n-1])
	v.blocks[0] = b
}

// reset empties the buffer.
func (v *victimBuffer) reset() { v.n = 0 }

// writeBuffer models the 21064's 4-deep write buffer. Each entry holds one
// cache block and merges subsequent stores to the same block; entries retire
// to the b-cache one at a time.
type writeBuffer struct {
	entries   []wbEntry
	retireAt  uint64 // virtual cycle when the b-cache port frees up
	retireCyc uint64
}

type wbEntry struct {
	block    uint64
	validAt  bool
	drainsAt uint64 // entry leaves the buffer at this cycle
}

func newWriteBuffer(depth, retireCycles int) *writeBuffer {
	return &writeBuffer{
		entries:   make([]wbEntry, depth),
		retireCyc: uint64(retireCycles),
	}
}

// put records a store to block at time now. It reports whether the store
// merged into an existing entry and how many cycles the CPU stalled waiting
// for a free entry.
func (w *writeBuffer) put(now, block uint64) (merged bool, stall uint64) {
	free := -1
	var earliest uint64
	earliestIdx := -1
	for i := range w.entries {
		e := &w.entries[i]
		if e.validAt && e.drainsAt > now {
			if e.block == block {
				return true, 0
			}
			if earliestIdx < 0 || e.drainsAt < earliest {
				earliest, earliestIdx = e.drainsAt, i
			}
		} else if free < 0 {
			free = i
		}
	}
	if free < 0 {
		// Buffer full: stall until the earliest entry drains.
		stall = earliest - now
		now = earliest
		free = earliestIdx
	}
	if w.retireAt < now {
		w.retireAt = now
	}
	w.retireAt += w.retireCyc
	w.entries[free] = wbEntry{block: block, validAt: true, drainsAt: w.retireAt}
	return false, stall
}

// reset empties the buffer.
func (w *writeBuffer) reset() {
	for i := range w.entries {
		w.entries[i] = wbEntry{}
	}
	w.retireAt = 0
}
