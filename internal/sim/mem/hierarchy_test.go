package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func testMachine() arch.Machine { return arch.DEC3000_600() }

func TestICacheHitAfterMiss(t *testing.T) {
	h := New(testMachine())
	if s := h.FetchInstr(0, 0x1000); s == 0 {
		t.Fatal("first fetch should miss and stall")
	}
	if s := h.FetchInstr(0, 0x1004); s != 0 {
		t.Fatalf("same-block fetch stalled %d cycles, want 0", s)
	}
	if h.IStats.Accesses != 2 || h.IStats.Misses != 1 {
		t.Fatalf("IStats = %+v, want 2 accesses 1 miss", h.IStats)
	}
}

func TestSequentialPrefetchReducesStall(t *testing.T) {
	m := testMachine()
	h := New(m)
	h.FetchInstr(0, 0x1000)             // misses, prefetches block at 0x1020
	stall := h.FetchInstr(1000, 0x1020) // demanded after the prefetch landed
	if stall != uint64(m.PrefetchHitCycles) {
		t.Fatalf("prefetched block stalled %d cycles, want %d", stall, m.PrefetchHitCycles)
	}
	// A consumer that catches up with an in-flight prefetch waits for it.
	h3 := New(m)
	h3.FetchInstr(0, 0x1000)
	if s := h3.FetchInstr(1, 0x1020); s <= uint64(m.PrefetchHitCycles) {
		t.Fatalf("in-flight prefetch consumed instantly: stall %d", s)
	}
	// A miss on a non-prefetched (non-sequential) block pays full cost.
	h2 := New(m)
	h2.FetchInstr(0, 0x1000)
	stall2 := h2.FetchInstr(0, 0x4000)
	if stall2 <= uint64(m.PrefetchHitCycles) {
		t.Fatalf("non-sequential miss stalled %d, want more than prefetch cost %d", stall2, m.PrefetchHitCycles)
	}
}

func TestPrefetchCountsAsBCacheAccess(t *testing.T) {
	h := New(testMachine())
	h.FetchInstr(0, 0x1000)
	// One demand fill plus one prefetch = two b-cache accesses, matching
	// the paper's footnote that a miss "may lead to another i-cache
	// block being prefetched, thus resulting in two b-cache accesses".
	if h.BStats.Accesses != 2 {
		t.Fatalf("BStats.Accesses = %d, want 2 (fill + prefetch)", h.BStats.Accesses)
	}
}

func TestReplacementMissClassification(t *testing.T) {
	m := testMachine()
	h := New(m)
	// Two addresses that map to the same i-cache set: 8 KB apart.
	a, b := uint64(0x1000), uint64(0x1000+8*1024)
	h.FetchInstr(0, a) // cold miss
	h.FetchInstr(0, b) // cold miss, evicts a
	h.FetchInstr(0, a) // replacement miss
	if h.IStats.Misses != 3 {
		t.Fatalf("misses = %d, want 3", h.IStats.Misses)
	}
	if h.IStats.ReplMisses != 1 {
		t.Fatalf("replacement misses = %d, want 1", h.IStats.ReplMisses)
	}
}

func TestBeginEpochKeepsContentsClearsStats(t *testing.T) {
	h := New(testMachine())
	h.FetchInstr(0, 0x1000)
	h.BeginEpoch()
	if h.IStats.Accesses != 0 {
		t.Fatal("BeginEpoch must clear statistics")
	}
	if s := h.FetchInstr(0, 0x1000); s != 0 {
		t.Fatalf("block evicted by BeginEpoch: stall %d", s)
	}
	// A conflicting fetch after BeginEpoch is a *cold* miss for this
	// epoch even though the block was resident in a previous epoch.
	h.FetchInstr(0, 0x1000+8*1024)
	if h.IStats.ReplMisses != 0 {
		t.Fatalf("cross-epoch conflict counted as replacement miss: %+v", h.IStats)
	}
}

func TestResetMakesCachesCold(t *testing.T) {
	h := New(testMachine())
	h.FetchInstr(0, 0x1000)
	h.Load(0, 0x20000)
	h.Reset()
	if h.ICachePresent(0x1000) || h.DCachePresent(0x20000) {
		t.Fatal("Reset must empty the caches")
	}
}

func TestLoadReadAllocate(t *testing.T) {
	h := New(testMachine())
	if s := h.Load(0, 0x40000); s == 0 {
		t.Fatal("cold load must stall")
	}
	if s := h.Load(0, 0x40008); s != 0 {
		t.Fatalf("same-block load stalled %d", s)
	}
	if h.DStats.Accesses != 2 || h.DStats.Misses != 1 {
		t.Fatalf("DStats = %+v", h.DStats)
	}
}

func TestStoreDoesNotAllocateDCache(t *testing.T) {
	h := New(testMachine())
	h.Store(0, 0x50000)
	if h.DCachePresent(0x50000) {
		t.Fatal("write-through d-cache must not allocate on write miss")
	}
}

func TestWriteMerging(t *testing.T) {
	h := New(testMachine())
	h.Store(0, 0x60000) // new write-buffer entry: a miss
	h.Store(1, 0x60008) // same block, still buffered: merges, a hit
	if h.DStats.Accesses != 2 || h.DStats.Misses != 1 {
		t.Fatalf("DStats = %+v, want 2 accesses 1 miss (merge)", h.DStats)
	}
}

func TestWriteBufferFullStalls(t *testing.T) {
	m := testMachine()
	h := New(m)
	// Fill all entries with distinct blocks at time 0.
	for i := 0; i < m.WriteBufferEntries; i++ {
		if s := h.Store(0, uint64(0x70000+i*64)); s != 0 {
			t.Fatalf("store %d stalled %d with buffer not yet full", i, s)
		}
	}
	if s := h.Store(0, 0x90000); s == 0 {
		t.Fatal("store into a full write buffer must stall")
	}
	// Long after all entries drained, stores are free again.
	if s := h.Store(1_000_000, 0xa0000); s != 0 {
		t.Fatalf("store after drain stalled %d", s)
	}
}

func TestBCacheMissGoesToMemory(t *testing.T) {
	m := testMachine()
	h := New(m)
	stall := h.Load(0, 0xb0000)
	if stall != uint64(m.MemoryCycles) {
		t.Fatalf("cold load through cold b-cache stalled %d, want memory latency %d", stall, m.MemoryCycles)
	}
	h.Reset()
	// Warm the b-cache, then evict the d-cache line only (d-cache is
	// 8 KB, b-cache 2 MB: pick a conflicting d-cache set that maps to a
	// different b-cache set).
	h.Load(0, 0xb0000)
	h.Load(0, 0xb0000+8*1024) // evicts from d-cache, stays in b-cache
	stall = h.Load(0, 0xb0000)
	if stall != uint64(m.BCacheHitCycles) {
		t.Fatalf("d-miss/b-hit stalled %d, want %d", stall, m.BCacheHitCycles)
	}
}

func TestStatsSubAndHits(t *testing.T) {
	a := Stats{Accesses: 10, Misses: 4, ReplMisses: 1}
	b := Stats{Accesses: 3, Misses: 1, ReplMisses: 0}
	d := a.Sub(b)
	if d != (Stats{Accesses: 7, Misses: 3, ReplMisses: 1}) {
		t.Fatalf("Sub = %+v", d)
	}
	if a.Hits() != 6 {
		t.Fatalf("Hits = %d", a.Hits())
	}
	if a.String() == "" {
		t.Fatal("String must be non-empty")
	}
}

// Property: for any access sequence, misses <= accesses, replacement misses
// <= misses, and re-running the same sequence from Reset is deterministic.
func TestAccountingInvariants(t *testing.T) {
	f := func(addrs []uint16, loads []uint16) bool {
		run := func() (Stats, Stats, Stats) {
			h := New(testMachine())
			for _, a := range addrs {
				h.FetchInstr(0, uint64(a)*4)
			}
			for i, a := range loads {
				if i%2 == 0 {
					h.Load(uint64(i), uint64(a)*8)
				} else {
					h.Store(uint64(i), uint64(a)*8)
				}
			}
			return h.IStats, h.DStats, h.BStats
		}
		i1, d1, b1 := run()
		i2, d2, b2 := run()
		if i1 != i2 || d1 != d2 || b1 != b2 {
			return false
		}
		for _, s := range []Stats{i1, d1, b1} {
			if s.Misses > s.Accesses || s.ReplMisses > s.Misses {
				return false
			}
		}
		return i1.Accesses == uint64(len(addrs)) && d1.Accesses == uint64(len(loads))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: within one epoch, accessing the same address twice in a row
// never misses twice.
func TestNoConsecutiveMissSameBlock(t *testing.T) {
	f := func(addrs []uint16) bool {
		h := New(testMachine())
		for _, a := range addrs {
			h.Load(0, uint64(a)*4)
			before := h.DStats.Misses
			h.Load(0, uint64(a)*4)
			if h.DStats.Misses != before {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
