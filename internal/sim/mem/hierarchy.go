package mem

import (
	"sync"

	"repro/internal/arch"
)

// Hierarchy is the complete simulated memory system of one host. All methods
// take the current virtual cycle ("now") and return the number of cycles the
// CPU stalls on the access; the caller (internal/sim/cpu) owns the clock.
type Hierarchy struct {
	m arch.Machine

	icache *cache
	dcache *cache
	bcache *cache
	wbuf   *writeBuffer

	// l2, when non-nil, is the optional unified mid-level cache between
	// the first-level caches and the b-cache (Machine.L2Bytes > 0).
	// First-level fills and stream-buffer prefetches probe it; write-
	// buffer retirement bypasses it straight to the b-cache (the write
	// path stays write-through).
	l2 *cache

	// victim, when non-nil, is the small fully-associative buffer of
	// blocks recently evicted from the i-cache (Machine.VictimEntries >
	// 0). An i-cache miss that finds its block there swaps it back for
	// VictimHitCycles instead of taking the fill path.
	victim *victimBuffer

	// iShift mirrors icache.blockShift so the per-instruction fetch fast
	// path needs no pointer chase into the cache struct.
	iShift uint

	// Single-entry sequential stream buffer between the i-cache and the
	// b-cache. Every i-cache miss prefetches the next sequential block;
	// a later miss that lands on the prefetched block is filled cheaply
	// once the prefetch has actually arrived — a prefetch that itself
	// missed the b-cache takes a full memory access to complete, and a
	// consumer that catches up earlier waits for the remainder. This is
	// what rewards the paper's sequential layouts and punishes scattered
	// ones: in-order code streams out of the b-cache, while a pessimal
	// layout's prefetches drag main-memory latency behind them.
	streamBlock   uint64
	streamValid   bool
	streamReadyAt uint64

	// lastIBlock memoizes the most recently fetched instruction block.
	// Straight-line code fetches the same block for consecutive
	// instructions, and only an i-cache fill can evict it — which would
	// update the memo — so a matching memo is a guaranteed hit that needs
	// no set lookup and no LRU update (the block is already MRU).
	lastIBlock uint64
	lastIValid bool

	// IStats counts instruction fetches against the i-cache, DStats the
	// combined d-cache/write-buffer behaviour, BStats the unified
	// b-cache (fills, prefetches, and write retirements).
	IStats Stats
	DStats Stats
	BStats Stats

	// L2Stats counts mid-level cache probes; it stays zero on machines
	// without an L2 (L2Bytes == 0), including the paper's DEC 3000/600.
	L2Stats Stats

	// VictimHits counts i-cache misses satisfied by the victim buffer.
	// These still count as IStats misses — the i-cache itself did miss —
	// so per-set replacement counts stay comparable with the static lint;
	// only the stall cycles change.
	VictimHits uint64

	// OnIMiss, when non-nil, observes every i-cache miss: the faulting
	// instruction address and whether the miss was a replacement
	// (conflict) miss rather than a cold one. The observability layer
	// uses it to build per-set conflict heatmaps. The hook sits on the
	// miss path only, so a nil hook leaves the hit path untouched and
	// costs one pointer comparison per miss.
	OnIMiss func(addr uint64, repl bool)
}

// New builds a hierarchy for machine m. The machine description must be
// valid (see arch.Machine.Validate).
func New(m arch.Machine) *Hierarchy {
	assoc := m.Assoc
	if assoc < 1 {
		assoc = 1
	}
	h := &Hierarchy{
		m:      m,
		icache: newCache(m.ICacheBytes, m.BlockBytes, assoc),
		dcache: newCache(m.DCacheBytes, m.BlockBytes, assoc),
		bcache: newCache(m.BCacheBytes, m.BlockBytes, 1),
		wbuf:   newWriteBuffer(m.WriteBufferEntries, m.WriteRetireCycles),
	}
	if m.L2Bytes > 0 {
		h.l2 = newCache(m.L2Bytes, m.BlockBytes, m.L2Assoc)
	}
	if m.VictimEntries > 0 {
		h.victim = newVictimBuffer(m.VictimEntries)
	}
	h.iShift = h.icache.blockShift
	return h
}

// hierPool recycles hierarchies between simulation samples. The cache
// backing arrays dominate a sample's allocations (the b-cache alone has
// tens of thousands of sets), and resetting a recycled hierarchy is a
// generation bump rather than a rebuild, so reuse removes both the
// allocator and the garbage collector from the per-sample critical path.
var hierPool sync.Pool

// NewPooled returns a cold hierarchy for machine m, reusing a previously
// Released one when its machine matches. A recycled hierarchy is
// indistinguishable from a fresh one: Reset restores cold caches, an empty
// write buffer, zeroed statistics, and a nil OnIMiss hook, so results are
// byte-identical whether or not reuse happened (a tested invariant).
func NewPooled(m arch.Machine) *Hierarchy {
	if v := hierPool.Get(); v != nil {
		h := v.(*Hierarchy)
		if h.m == m {
			h.OnIMiss = nil
			h.Reset()
			return h
		}
		// Geometry mismatch (a machine-sweep interleaving): drop it and
		// build fresh rather than keep probing the pool.
	}
	return New(m)
}

// Release returns h to the reuse pool. The caller must not touch h
// afterwards; the next NewPooled with the same machine may hand it out.
func (h *Hierarchy) Release() { hierPool.Put(h) }

// Machine returns the machine description this hierarchy simulates.
func (h *Hierarchy) Machine() arch.Machine { return h.m }

// bAccess performs one b-cache reference and returns the CPU-visible stall.
func (h *Hierarchy) bAccess(addr uint64, stallOnHit uint64) (stall uint64) {
	h.BStats.Accesses++
	hit, repl := h.bcache.access(addr)
	if hit {
		return stallOnHit
	}
	h.BStats.Misses++
	if repl {
		h.BStats.ReplMisses++
	}
	return uint64(h.m.MemoryCycles)
}

// fillAccess services a first-level fill (i-cache fill, stream-buffer
// prefetch, or d-cache load miss) through the rest of the hierarchy: the
// optional unified L2 first, then the b-cache. Machines without an L2
// degenerate to a plain b-cache access, keeping the paper's baseline
// bit-identical. Write-buffer retirement deliberately does not come through
// here — the write path is write-through straight to the b-cache.
func (h *Hierarchy) fillAccess(addr uint64, stallOnHit uint64) (stall uint64) {
	if h.l2 == nil {
		return h.bAccess(addr, stallOnHit)
	}
	h.L2Stats.Accesses++
	hit, repl := h.l2.access(addr)
	if hit {
		return uint64(h.m.L2HitCycles)
	}
	h.L2Stats.Misses++
	if repl {
		h.L2Stats.ReplMisses++
	}
	return h.bAccess(addr, stallOnHit)
}

// FetchInstr simulates the instruction fetch for the instruction at addr.
// Every dynamic instruction counts as one i-cache access, so
// IStats.Accesses equals the dynamic instruction count, as in the paper.
// The body is small enough to inline into cpu.Step; straight-line code
// takes the memoized same-block path without a cache lookup — the block is
// still resident (only an i-fill evicts i-cache lines, and any fill
// updates the memo) and already in MRU position.
func (h *Hierarchy) FetchInstr(now, addr uint64) (stall uint64) {
	h.IStats.Accesses++
	block := addr >> h.iShift
	if h.lastIValid && block == h.lastIBlock {
		return 0
	}
	return h.fetchSlow(now, addr, block)
}

// fetchSlow is the out-of-line continuation of FetchInstr: a real i-cache
// lookup, and on a miss the victim-buffer/stream-buffer/fill path.
func (h *Hierarchy) fetchSlow(now, addr, block uint64) (stall uint64) {
	var hit, repl, hasEvict bool
	var evicted uint64
	if h.victim != nil {
		// Track which resident block the fill displaces so it can be
		// parked in the victim buffer (Jouppi-style) instead of lost.
		hit, repl, evicted, hasEvict = h.icache.accessEvict(addr)
	} else {
		hit, repl = h.icache.access(addr)
	}
	if hit {
		h.lastIBlock, h.lastIValid = block, true
		return 0
	}
	h.IStats.Misses++
	if repl {
		h.IStats.ReplMisses++
	}
	if h.OnIMiss != nil {
		h.OnIMiss(addr, repl)
	}
	if h.victim != nil && h.victim.take(block) {
		// Victim hit: the displaced block swaps back in one short
		// transfer. No stream-buffer prefetch — the victim path exists
		// precisely because the reference pattern is ping-ponging
		// between conflicting blocks, not streaming forward.
		h.VictimHits++
		if hasEvict {
			h.victim.put(evicted)
		}
		h.lastIBlock, h.lastIValid = block, true
		return uint64(h.m.VictimHitCycles)
	}
	if hasEvict {
		h.victim.put(evicted)
	}
	if h.streamValid && h.streamBlock == block {
		// The block was sequentially prefetched: cheap fill, plus
		// however long the prefetch itself still needs to arrive.
		stall = uint64(h.m.PrefetchHitCycles)
		if h.streamReadyAt > now {
			stall += h.streamReadyAt - now
		}
	} else {
		stall = h.fillAccess(addr, uint64(h.m.BCacheHitCycles))
	}
	// The miss filled the block, so it is resident (and MRU) now.
	h.lastIBlock, h.lastIValid = block, true
	// Prefetch the next sequential block into the stream buffer unless it
	// is already resident; this is an extra fill access that overlaps
	// execution (the CPU only stalls if it catches up with it).
	next := addr + uint64(h.m.BlockBytes)
	if !h.icache.present(next) {
		latency := h.fillAccess(next, uint64(h.m.BCacheHitCycles))
		h.streamBlock = block + 1
		h.streamValid = true
		h.streamReadyAt = now + stall + latency
	} else {
		h.streamValid = false
	}
	return stall
}

// Load simulates a data read of the block containing addr.
func (h *Hierarchy) Load(now, addr uint64) (stall uint64) {
	h.DStats.Accesses++
	hit, repl := h.dcache.access(addr)
	if hit {
		return 0
	}
	h.DStats.Misses++
	if repl {
		h.DStats.ReplMisses++
	}
	return h.fillAccess(addr, uint64(h.m.BCacheHitCycles))
}

// Store simulates a data write through the write buffer. On the paper's
// machine the d-cache is write-through and allocates on read misses only,
// so the d-cache contents are updated only if the block is already
// resident. A write that merges into an active write-buffer entry counts
// as a hit; an unmerged write counts as a miss and retires through the
// b-cache (which allocates on either miss type).
//
// On machines with DCacheWriteAllocate set, an unmerged write whose block
// is absent from the d-cache additionally fills it, and the CPU waits for
// that fill (a read-for-ownership): the fill stall is fully exposed on top
// of any write-buffer stall. The fill subsumes the retirement access, so
// b-cache traffic stays one access per unmerged write on either policy.
func (h *Hierarchy) Store(now, addr uint64) (stall uint64) {
	h.DStats.Accesses++
	block := addr >> uint64(h.dcache.blockShift)
	merged, wstall := h.wbuf.put(now, block)
	if merged {
		return wstall
	}
	h.DStats.Misses++
	if h.m.DCacheWriteAllocate {
		if hit, _ := h.dcache.access(addr); !hit {
			// Write-allocate fill: fetch the block before the write can
			// complete. The CPU sees the full fill latency.
			return wstall + h.fillAccess(addr, uint64(h.m.BCacheHitCycles))
		}
	}
	// The retirement write is a b-cache access; it allocates in the
	// b-cache but its latency is hidden behind the write buffer, so the
	// only CPU-visible stall is a full buffer.
	h.BStats.Accesses++
	hit, repl := h.bcache.access(addr)
	if !hit {
		h.BStats.Misses++
		if repl {
			h.BStats.ReplMisses++
		}
	}
	return wstall
}

// BeginEpoch zeroes all statistics and forgets the cold/replacement
// classification history while keeping cache contents warm. Use it at the
// start of a traced measurement, as the paper does.
func (h *Hierarchy) BeginEpoch() {
	h.IStats, h.DStats, h.BStats, h.L2Stats = Stats{}, Stats{}, Stats{}, Stats{}
	h.VictimHits = 0
	h.icache.beginEpoch()
	h.dcache.beginEpoch()
	h.bcache.beginEpoch()
	if h.l2 != nil {
		h.l2.beginEpoch()
	}
}

// Reset makes every cache cold and zeroes all statistics.
func (h *Hierarchy) Reset() {
	h.BeginEpoch()
	h.icache.reset()
	h.dcache.reset()
	h.bcache.reset()
	h.wbuf.reset()
	if h.l2 != nil {
		h.l2.reset()
	}
	if h.victim != nil {
		h.victim.reset()
	}
	h.streamValid = false
	h.lastIValid = false
}

// ICachePresent reports whether the i-cache currently holds the block
// containing addr; used by layout-quality diagnostics and tests.
func (h *Hierarchy) ICachePresent(addr uint64) bool { return h.icache.present(addr) }

// DCachePresent reports whether the d-cache currently holds the block
// containing addr.
func (h *Hierarchy) DCachePresent(addr uint64) bool { return h.dcache.present(addr) }
