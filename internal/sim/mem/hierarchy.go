package mem

import (
	"sync"

	"repro/internal/arch"
)

// Hierarchy is the complete simulated memory system of one host. All methods
// take the current virtual cycle ("now") and return the number of cycles the
// CPU stalls on the access; the caller (internal/sim/cpu) owns the clock.
type Hierarchy struct {
	m arch.Machine

	icache *cache
	dcache *cache
	bcache *cache
	wbuf   *writeBuffer

	// iShift mirrors icache.blockShift so the per-instruction fetch fast
	// path needs no pointer chase into the cache struct.
	iShift uint

	// Single-entry sequential stream buffer between the i-cache and the
	// b-cache. Every i-cache miss prefetches the next sequential block;
	// a later miss that lands on the prefetched block is filled cheaply
	// once the prefetch has actually arrived — a prefetch that itself
	// missed the b-cache takes a full memory access to complete, and a
	// consumer that catches up earlier waits for the remainder. This is
	// what rewards the paper's sequential layouts and punishes scattered
	// ones: in-order code streams out of the b-cache, while a pessimal
	// layout's prefetches drag main-memory latency behind them.
	streamBlock   uint64
	streamValid   bool
	streamReadyAt uint64

	// lastIBlock memoizes the most recently fetched instruction block.
	// Straight-line code fetches the same block for consecutive
	// instructions, and only an i-cache fill can evict it — which would
	// update the memo — so a matching memo is a guaranteed hit that needs
	// no set lookup and no LRU update (the block is already MRU).
	lastIBlock uint64
	lastIValid bool

	// IStats counts instruction fetches against the i-cache, DStats the
	// combined d-cache/write-buffer behaviour, BStats the unified
	// b-cache (fills, prefetches, and write retirements).
	IStats Stats
	DStats Stats
	BStats Stats

	// OnIMiss, when non-nil, observes every i-cache miss: the faulting
	// instruction address and whether the miss was a replacement
	// (conflict) miss rather than a cold one. The observability layer
	// uses it to build per-set conflict heatmaps. The hook sits on the
	// miss path only, so a nil hook leaves the hit path untouched and
	// costs one pointer comparison per miss.
	OnIMiss func(addr uint64, repl bool)
}

// New builds a hierarchy for machine m. The machine description must be
// valid (see arch.Machine.Validate).
func New(m arch.Machine) *Hierarchy {
	assoc := m.Assoc
	if assoc < 1 {
		assoc = 1
	}
	h := &Hierarchy{
		m:      m,
		icache: newCache(m.ICacheBytes, m.BlockBytes, assoc),
		dcache: newCache(m.DCacheBytes, m.BlockBytes, assoc),
		bcache: newCache(m.BCacheBytes, m.BlockBytes, 1),
		wbuf:   newWriteBuffer(m.WriteBufferEntries, m.WriteRetireCycles),
	}
	h.iShift = h.icache.blockShift
	return h
}

// hierPool recycles hierarchies between simulation samples. The cache
// backing arrays dominate a sample's allocations (the b-cache alone has
// tens of thousands of sets), and resetting a recycled hierarchy is a
// generation bump rather than a rebuild, so reuse removes both the
// allocator and the garbage collector from the per-sample critical path.
var hierPool sync.Pool

// NewPooled returns a cold hierarchy for machine m, reusing a previously
// Released one when its machine matches. A recycled hierarchy is
// indistinguishable from a fresh one: Reset restores cold caches, an empty
// write buffer, zeroed statistics, and a nil OnIMiss hook, so results are
// byte-identical whether or not reuse happened (a tested invariant).
func NewPooled(m arch.Machine) *Hierarchy {
	if v := hierPool.Get(); v != nil {
		h := v.(*Hierarchy)
		if h.m == m {
			h.OnIMiss = nil
			h.Reset()
			return h
		}
		// Geometry mismatch (a machine-sweep interleaving): drop it and
		// build fresh rather than keep probing the pool.
	}
	return New(m)
}

// Release returns h to the reuse pool. The caller must not touch h
// afterwards; the next NewPooled with the same machine may hand it out.
func (h *Hierarchy) Release() { hierPool.Put(h) }

// Machine returns the machine description this hierarchy simulates.
func (h *Hierarchy) Machine() arch.Machine { return h.m }

// bAccess performs one b-cache reference and returns the CPU-visible stall.
func (h *Hierarchy) bAccess(addr uint64, stallOnHit uint64) (stall uint64) {
	h.BStats.Accesses++
	hit, repl := h.bcache.access(addr)
	if hit {
		return stallOnHit
	}
	h.BStats.Misses++
	if repl {
		h.BStats.ReplMisses++
	}
	return uint64(h.m.MemoryCycles)
}

// FetchInstr simulates the instruction fetch for the instruction at addr.
// Every dynamic instruction counts as one i-cache access, so
// IStats.Accesses equals the dynamic instruction count, as in the paper.
// The body is small enough to inline into cpu.Step; straight-line code
// takes the memoized same-block path without a cache lookup — the block is
// still resident (only an i-fill evicts i-cache lines, and any fill
// updates the memo) and already in MRU position.
func (h *Hierarchy) FetchInstr(now, addr uint64) (stall uint64) {
	h.IStats.Accesses++
	block := addr >> h.iShift
	if h.lastIValid && block == h.lastIBlock {
		return 0
	}
	return h.fetchSlow(now, addr, block)
}

// fetchSlow is the out-of-line continuation of FetchInstr: a real i-cache
// lookup, and on a miss the stream-buffer/b-cache fill path.
func (h *Hierarchy) fetchSlow(now, addr, block uint64) (stall uint64) {
	hit, repl := h.icache.access(addr)
	if hit {
		h.lastIBlock, h.lastIValid = block, true
		return 0
	}
	h.IStats.Misses++
	if repl {
		h.IStats.ReplMisses++
	}
	if h.OnIMiss != nil {
		h.OnIMiss(addr, repl)
	}
	if h.streamValid && h.streamBlock == block {
		// The block was sequentially prefetched: cheap fill, plus
		// however long the prefetch itself still needs to arrive.
		stall = uint64(h.m.PrefetchHitCycles)
		if h.streamReadyAt > now {
			stall += h.streamReadyAt - now
		}
	} else {
		stall = h.bAccess(addr, uint64(h.m.BCacheHitCycles))
	}
	// The miss filled the block, so it is resident (and MRU) now.
	h.lastIBlock, h.lastIValid = block, true
	// Prefetch the next sequential block into the stream buffer unless it
	// is already resident; this is an extra b-cache access that overlaps
	// execution (the CPU only stalls if it catches up with it).
	next := addr + uint64(h.m.BlockBytes)
	if !h.icache.present(next) {
		latency := h.bAccess(next, uint64(h.m.BCacheHitCycles))
		h.streamBlock = block + 1
		h.streamValid = true
		h.streamReadyAt = now + stall + latency
	} else {
		h.streamValid = false
	}
	return stall
}

// Load simulates a data read of the block containing addr.
func (h *Hierarchy) Load(now, addr uint64) (stall uint64) {
	h.DStats.Accesses++
	hit, repl := h.dcache.access(addr)
	if hit {
		return 0
	}
	h.DStats.Misses++
	if repl {
		h.DStats.ReplMisses++
	}
	return h.bAccess(addr, uint64(h.m.BCacheHitCycles))
}

// Store simulates a data write through the write buffer. The d-cache is
// write-through and allocates on read misses only, so the d-cache contents
// are updated only if the block is already resident. A write that merges
// into an active write-buffer entry counts as a hit; an unmerged write
// counts as a miss and retires through the b-cache (which allocates on
// either miss type).
func (h *Hierarchy) Store(now, addr uint64) (stall uint64) {
	h.DStats.Accesses++
	block := addr >> uint64(h.dcache.blockShift)
	merged, wstall := h.wbuf.put(now, block)
	if merged {
		return wstall
	}
	h.DStats.Misses++
	// The retirement write is a b-cache access; it allocates in the
	// b-cache but its latency is hidden behind the write buffer, so the
	// only CPU-visible stall is a full buffer.
	h.BStats.Accesses++
	hit, repl := h.bcache.access(addr)
	if !hit {
		h.BStats.Misses++
		if repl {
			h.BStats.ReplMisses++
		}
	}
	return wstall
}

// BeginEpoch zeroes all statistics and forgets the cold/replacement
// classification history while keeping cache contents warm. Use it at the
// start of a traced measurement, as the paper does.
func (h *Hierarchy) BeginEpoch() {
	h.IStats, h.DStats, h.BStats = Stats{}, Stats{}, Stats{}
	h.icache.beginEpoch()
	h.dcache.beginEpoch()
	h.bcache.beginEpoch()
}

// Reset makes every cache cold and zeroes all statistics.
func (h *Hierarchy) Reset() {
	h.BeginEpoch()
	h.icache.reset()
	h.dcache.reset()
	h.bcache.reset()
	h.wbuf.reset()
	h.streamValid = false
	h.lastIValid = false
}

// ICachePresent reports whether the i-cache currently holds the block
// containing addr; used by layout-quality diagnostics and tests.
func (h *Hierarchy) ICachePresent(addr uint64) bool { return h.icache.present(addr) }

// DCachePresent reports whether the d-cache currently holds the block
// containing addr.
func (h *Hierarchy) DCachePresent(addr uint64) bool { return h.dcache.present(addr) }
