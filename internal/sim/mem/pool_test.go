package mem

import (
	"testing"

	"repro/internal/arch"
)

// exercise drives h through a deterministic access mix covering every path:
// i-fetches (sequential and scattered), loads, stores, and epoch boundaries.
// It returns the final statistics triple.
func exercise(h *Hierarchy) [3]Stats {
	var now uint64
	step := func(stall uint64) { now += 1 + stall }
	for rep := 0; rep < 3; rep++ {
		for i := uint64(0); i < 4096; i++ {
			step(h.FetchInstr(now, 0x1000+i*4))
			if i%3 == 0 {
				step(h.Load(now, 0x80000+(i*97)%32768))
			}
			if i%5 == 0 {
				step(h.Store(now, 0x90000+(i*53)%16384))
			}
			if i%17 == 0 { // scattered fetch to force conflict misses
				step(h.FetchInstr(now, 0x400000+(i*1031)%262144))
			}
		}
		if rep == 1 {
			h.BeginEpoch()
		}
	}
	return [3]Stats{h.IStats, h.DStats, h.BStats}
}

// TestPooledHierarchyMatchesFresh is the pooling determinism invariant the
// experiment runner relies on: a recycled hierarchy must be observationally
// identical to a freshly built one, so simulation output cannot depend on
// which samples (or goroutines) previously used the pooled object.
func TestPooledHierarchyMatchesFresh(t *testing.T) {
	m := testMachine()
	want := exercise(New(m))

	// Dirty a hierarchy thoroughly, release it, and re-acquire. The pool is
	// process-global, so loop a few times to make reuse overwhelmingly
	// likely regardless of what other tests put there.
	for i := 0; i < 4; i++ {
		dirty := NewPooled(m)
		dirty.OnIMiss = func(uint64, bool) {}
		exercise(dirty)
		dirty.Release()

		h := NewPooled(m)
		if h.OnIMiss != nil {
			t.Fatal("recycled hierarchy kept its OnIMiss hook")
		}
		if got := exercise(h); got != want {
			t.Fatalf("pooled run %d diverged from fresh hierarchy:\ngot  %+v\nwant %+v", i, got, want)
		}
		h.Release()
	}
}

// TestPooledGeometryMismatchBuildsFresh guards the machine-sweep case: a
// pooled hierarchy for one geometry must never be handed out for another.
func TestPooledGeometryMismatchBuildsFresh(t *testing.T) {
	a := testMachine()
	b := a
	b.ICacheBytes *= 2
	ha := NewPooled(a)
	ha.Release()
	hb := NewPooled(b)
	if hb.Machine() != b {
		t.Fatalf("NewPooled(b) returned machine %+v", hb.Machine())
	}
	if got := exercise(hb); got == exercise(New(a)) {
		t.Fatal("doubled i-cache produced identical stats — wrong geometry reused")
	}
}

// TestHierarchySteadyStateAllocFree pins the simulated access paths at zero
// allocations: the flat cache arrays and generation-stamped bookkeeping must
// not allocate once constructed, or per-sample GC pressure returns.
func TestHierarchySteadyStateAllocFree(t *testing.T) {
	h := New(arch.DEC3000_600())
	exercise(h) // warm: grows the seen-sets to steady state
	h.Reset()
	allocs := testing.AllocsPerRun(10, func() {
		exercise(h)
		h.Reset()
	})
	if allocs != 0 {
		t.Fatalf("hierarchy access path allocates %.1f objects per run, want 0", allocs)
	}
}
