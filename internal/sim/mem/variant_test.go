package mem

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/machines"
)

// fullStats is the complete observable statistics state of a hierarchy,
// including the machine-matrix extensions; comparable for byte-identity
// assertions.
type fullStats struct {
	I, D, B, L2 Stats
	VictimHits  uint64
}

// exerciseFull is exercise plus the extended counters.
func exerciseFull(h *Hierarchy) fullStats {
	base := exercise(h)
	return fullStats{I: base[0], D: base[1], B: base[2], L2: h.L2Stats, VictimHits: h.VictimHits}
}

// conflictMachine shrinks the i-cache so two blocks ping-pong in one set.
func conflictMachine() arch.Machine {
	m := arch.DEC3000_600()
	m.ICacheBytes = 4 * 32 // 4 direct-mapped sets
	return m
}

func TestVictimBufferCatchesConflictPingPong(t *testing.T) {
	m := conflictMachine()
	m.VictimEntries = 4
	m.VictimHitCycles = 2

	h := New(m)
	a := uint64(0x1000)
	b := a + uint64(m.ICacheBytes) // same set, different tag
	var now, stalls uint64
	for i := 0; i < 64; i++ {
		s := h.FetchInstr(now, a) + h.FetchInstr(now, b)
		stalls += s
		now += 2 + s
	}
	if h.VictimHits == 0 {
		t.Fatal("ping-pong between two conflicting blocks never hit the victim buffer")
	}
	// After the first two cold fills every miss should be a 2-cycle victim
	// swap, far below the b-cache hit latency it replaces.
	plain := New(conflictMachine())
	now = 0
	var plainStalls uint64
	for i := 0; i < 64; i++ {
		s := plain.FetchInstr(now, a) + plain.FetchInstr(now, b)
		plainStalls += s
		now += 2 + s
	}
	if stalls >= plainStalls {
		t.Errorf("victim machine stalled %d cycles, plain machine %d — victim buffer bought nothing", stalls, plainStalls)
	}
	if h.IStats.Misses != plain.IStats.Misses {
		t.Errorf("victim machine counted %d i-misses, plain %d — victim hits must still count as misses",
			h.IStats.Misses, plain.IStats.Misses)
	}
}

func TestVictimBufferCapacityBound(t *testing.T) {
	m := conflictMachine()
	m.VictimEntries = 1
	m.VictimHitCycles = 2
	h := New(m)
	// Three-way ping-pong overflows a 1-entry buffer: each miss displaces a
	// block, and by the time that block is refetched it has been pushed out.
	a := uint64(0x1000)
	b := a + uint64(m.ICacheBytes)
	c := b + uint64(m.ICacheBytes)
	var now uint64
	for i := 0; i < 32; i++ {
		for _, addr := range []uint64{a, b, c} {
			s := h.FetchInstr(now, addr)
			now += 1 + s
		}
	}
	if h.VictimHits != 0 {
		t.Errorf("1-entry victim buffer hit %d times under a 3-block rotation, want 0", h.VictimHits)
	}
}

func TestL2AbsorbsRepeatFills(t *testing.T) {
	m := conflictMachine()
	m.L2Bytes = 64 * 1024
	m.L2Assoc = 4
	m.L2HitCycles = 6
	h := New(m)
	a := uint64(0x1000)
	b := a + uint64(m.ICacheBytes)
	var now uint64
	for i := 0; i < 64; i++ {
		s := h.FetchInstr(now, a) + h.FetchInstr(now, b)
		now += 2 + s
	}
	if h.L2Stats.Accesses == 0 {
		t.Fatal("i-cache conflict fills never probed the L2")
	}
	if h.L2Stats.Misses >= h.L2Stats.Accesses {
		t.Errorf("L2 never hit (%d misses / %d accesses) despite a 2-block working set", h.L2Stats.Misses, h.L2Stats.Accesses)
	}
	// Fills satisfied by the L2 must not reach the b-cache.
	plain := New(conflictMachine())
	now = 0
	for i := 0; i < 64; i++ {
		s := plain.FetchInstr(now, a) + plain.FetchInstr(now, b)
		now += 2 + s
	}
	if h.BStats.Accesses >= plain.BStats.Accesses {
		t.Errorf("L2 machine made %d b-cache accesses, plain machine %d — L2 shielded nothing",
			h.BStats.Accesses, plain.BStats.Accesses)
	}
}

func TestWriteAllocateFillsDCache(t *testing.T) {
	m := arch.DEC3000_600()
	m.DCacheWriteAllocate = true
	h := New(m)
	addr := uint64(0x5000)
	if h.DCachePresent(addr) {
		t.Fatal("test address unexpectedly resident in a cold d-cache")
	}
	stall := h.Store(0, addr)
	if !h.DCachePresent(addr) {
		t.Error("write-allocate store did not fill the d-cache")
	}
	if stall < uint64(m.MemoryCycles) {
		t.Errorf("cold write-allocate store stalled %d cycles, want >= memory latency %d", stall, m.MemoryCycles)
	}

	// The no-allocate baseline leaves the block absent and hides the
	// retirement latency behind the write buffer.
	plain := New(arch.DEC3000_600())
	pstall := plain.Store(0, addr)
	if plain.DCachePresent(addr) {
		t.Error("no-allocate store filled the d-cache")
	}
	if pstall != 0 {
		t.Errorf("no-allocate store with an empty write buffer stalled %d cycles, want 0", pstall)
	}
}

// TestPooledMatchesFreshAcrossMatrix extends the pooling determinism
// invariant to every geometry in the machine matrix: victim buffers, the
// L2, write-allocate state, and set-associative LRU stacks must all be
// indistinguishable after a pooled Reset.
func TestPooledMatchesFreshAcrossMatrix(t *testing.T) {
	for _, model := range machines.Matrix() {
		model := model
		t.Run(model.Name, func(t *testing.T) {
			want := exerciseFull(New(model.Machine))
			dirty := NewPooled(model.Machine)
			exerciseFull(dirty)
			dirty.Release()
			h := NewPooled(model.Machine)
			if got := exerciseFull(h); got != want {
				t.Fatalf("pooled run diverged from fresh hierarchy:\ngot  %+v\nwant %+v", got, want)
			}
			h.Release()
		})
	}
}

// TestVariantSteadyStateAllocFree pins the extended access paths (victim
// swap, L2 probe, write-allocate fill) at zero steady-state allocations,
// matching the baseline invariant.
func TestVariantSteadyStateAllocFree(t *testing.T) {
	m := arch.DEC3000_600()
	m.VictimEntries = 8
	m.VictimHitCycles = 2
	m.L2Bytes = 256 * 1024
	m.L2Assoc = 4
	m.L2HitCycles = 6
	m.DCacheWriteAllocate = true
	h := New(m)
	exercise(h)
	h.Reset()
	allocs := testing.AllocsPerRun(10, func() {
		exercise(h)
		h.Reset()
	})
	if allocs != 0 {
		t.Fatalf("variant access path allocates %.1f objects per run, want 0", allocs)
	}
}

// TestBaselineUnaffectedByExtensions locks in the bit-identity guarantee:
// a machine with every extension disabled behaves exactly like the code
// before the extensions existed, i.e. the extended counters stay zero.
func TestBaselineUnaffectedByExtensions(t *testing.T) {
	h := New(arch.DEC3000_600())
	exercise(h)
	if h.L2Stats != (Stats{}) || h.VictimHits != 0 {
		t.Errorf("baseline machine touched extension counters: L2=%+v victim=%d", h.L2Stats, h.VictimHits)
	}
}
