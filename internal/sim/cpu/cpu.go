// Package cpu executes instruction streams against the simulated memory
// hierarchy and produces the paper's three headline metrics: CPI (cycles per
// instruction), iCPI (CPI under a perfect memory system), and mCPI (memory
// cycles per instruction, the difference of the two).
//
// The issue model follows the paper's CPU simulator: a dual-issue machine
// where pairs of independent simple operations issue together, every taken
// branch pays a fixed pipeline penalty, loads have a one-cycle use bubble,
// and integer multiplies occupy the non-pipelined multiplier.
package cpu

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/sim/mem"
)

// Entry is one dynamic instruction of a trace.
type Entry struct {
	// Addr is the virtual address of the instruction.
	Addr uint64
	// Op is the instruction class.
	Op arch.Op
	// Taken reports the outcome of a conditional branch; unconditional
	// branches and jumps are always taken.
	Taken bool
	// DataAddr is the effective address of a load or store.
	DataAddr uint64
}

// Metrics summarizes an executed instruction stream.
type Metrics struct {
	// Instructions is the dynamic trace length.
	Instructions uint64
	// Cycles is total execution time including memory stalls.
	Cycles uint64
	// PerfectCycles is execution time assuming every memory access hits.
	PerfectCycles uint64
}

// CPI returns total cycles per instruction.
func (m Metrics) CPI() float64 {
	if m.Instructions == 0 {
		return 0
	}
	return float64(m.Cycles) / float64(m.Instructions)
}

// ICPI returns the instruction CPI (perfect memory system).
func (m Metrics) ICPI() float64 {
	if m.Instructions == 0 {
		return 0
	}
	return float64(m.PerfectCycles) / float64(m.Instructions)
}

// MCPI returns the memory CPI: the average number of cycles an instruction
// stalls waiting for the memory system.
func (m Metrics) MCPI() float64 { return m.CPI() - m.ICPI() }

// Sub returns the metrics accumulated between snapshot o and m.
func (m Metrics) Sub(o Metrics) Metrics {
	return Metrics{
		Instructions:  m.Instructions - o.Instructions,
		Cycles:        m.Cycles - o.Cycles,
		PerfectCycles: m.PerfectCycles - o.PerfectCycles,
	}
}

func (m Metrics) String() string {
	return fmt.Sprintf("instr=%d cycles=%d CPI=%.2f iCPI=%.2f mCPI=%.2f",
		m.Instructions, m.Cycles, m.CPI(), m.ICPI(), m.MCPI())
}

// CPU consumes a stream of trace entries, charging issue cycles and memory
// stalls as it goes. It is deterministic: the same stream against the same
// hierarchy state always produces the same metrics.
type CPU struct {
	m arch.Machine
	h *mem.Hierarchy

	metrics Metrics

	// pairable is true when the previous instruction occupies the first
	// slot of an issue pair and may absorb the current one for free.
	pairable bool
	// pairablePerfect tracks the same state for the perfect-memory model
	// (stalls break issue pairs in the real machine).
	pairablePerfect bool
	// pairGate rations dual issue: the 21064's strict issue rules and
	// real data dependences mean only a fraction of adjacent pairs
	// actually dual-issue; every gateMod-th opportunity is taken.
	pairGate        int
	pairGatePerfect int

	// gateMod is derived from Machine.IssueWidth: 3 on a dual-issue
	// machine like the 21064 (one in three pairable opportunities
	// actually pairs), 2 on a three-wide core, and 1 — every opportunity
	// pairs — at width four and beyond, modeling how wider decode and
	// fewer issue restrictions let more adjacent independent ops
	// co-issue. The dynamic pairing model stays two ops per cycle; width
	// buys a higher success rate, not wider bundles.
	gateMod int
}

// New returns a CPU executing against hierarchy h.
func New(h *mem.Hierarchy) *CPU {
	m := h.Machine()
	gate := 3
	switch {
	case m.IssueWidth >= 4:
		gate = 1
	case m.IssueWidth == 3:
		gate = 2
	}
	return &CPU{m: m, h: h, gateMod: gate}
}

// Hierarchy returns the attached memory hierarchy.
func (c *CPU) Hierarchy() *mem.Hierarchy { return c.h }

// Machine returns the machine description.
func (c *CPU) Machine() arch.Machine { return c.m }

// Metrics returns the counters accumulated so far.
func (c *CPU) Metrics() Metrics { return c.metrics }

// Now returns the current virtual cycle.
func (c *CPU) Now() uint64 { return c.metrics.Cycles }

// AdvanceCycles moves virtual time forward without executing instructions
// (e.g. while the CPU spins waiting for an interrupt or sleeps in the idle
// loop). The time is charged to both the real and perfect clocks so it does
// not perturb CPI accounting of traced code.
func (c *CPU) AdvanceCycles(n uint64) {
	c.metrics.Cycles += n
	c.metrics.PerfectCycles += n
	c.pairable, c.pairablePerfect = false, false
}

// Reset zeroes the metrics and issue state; the hierarchy is left untouched.
func (c *CPU) Reset() {
	c.metrics = Metrics{}
	c.pairable, c.pairablePerfect = false, false
}

// issueCycles returns the base (perfect-memory) cost of op and whether the
// instruction may start an issue pair.
func (c *CPU) issueCycles(op arch.Op, taken bool) (cycles uint64, startsPair bool) {
	switch op {
	case arch.OpALU, arch.OpNop:
		return 1, true
	case arch.OpLoad:
		// One-cycle load-use bubble on average.
		return 2, false
	case arch.OpStore:
		return 1, false
	case arch.OpCondBr:
		if taken {
			return 1 + uint64(c.m.TakenBranchCycles), false
		}
		return 1, false
	case arch.OpBr, arch.OpJump:
		return 1 + uint64(c.m.TakenBranchCycles), false
	case arch.OpMul:
		return uint64(c.m.MulCycles), false
	default:
		return 1, false
	}
}

// pairsWith reports whether op can occupy the second slot of an issue pair
// opened by a simple integer op.
func pairsWith(op arch.Op) bool {
	switch op {
	case arch.OpALU, arch.OpNop, arch.OpLoad, arch.OpStore:
		return true
	default:
		return false
	}
}

// Step executes one instruction.
func (c *CPU) Step(e Entry) {
	c.metrics.Instructions++

	issue, startsPair := c.issueCycles(e.Op, e.Taken)

	// Perfect-memory clock.
	if c.pairablePerfect && pairsWith(e.Op) {
		c.pairGatePerfect++
	}
	if c.pairablePerfect && pairsWith(e.Op) && c.pairGatePerfect%c.gateMod == 0 {
		// Issues in the same cycle as the previous instruction: the
		// incremental perfect cost is issue-1 (a load's use bubble
		// still applies).
		c.metrics.PerfectCycles += issue - 1
		c.pairablePerfect = false
	} else {
		c.metrics.PerfectCycles += issue
		c.pairablePerfect = startsPair
	}

	// Real clock: instruction fetch first.
	stall := c.h.FetchInstr(c.metrics.Cycles, e.Addr)
	if e.Op.AccessesMemory() {
		if e.Op == arch.OpLoad {
			stall += c.h.Load(c.metrics.Cycles, e.DataAddr)
		} else {
			stall += c.h.Store(c.metrics.Cycles, e.DataAddr)
		}
	}
	if c.pairable && stall == 0 && pairsWith(e.Op) {
		c.pairGate++
	}
	if c.pairable && stall == 0 && pairsWith(e.Op) && c.pairGate%c.gateMod == 0 {
		c.metrics.Cycles += issue - 1
		c.pairable = false
	} else {
		c.metrics.Cycles += issue + stall
		c.pairable = startsPair && stall == 0
	}

}

// Run executes a recorded trace and returns the metrics accumulated by it
// (excluding anything executed before).
func (c *CPU) Run(trace []Entry) Metrics {
	before := c.metrics
	for _, e := range trace {
		c.Step(e)
	}
	return c.metrics.Sub(before)
}
