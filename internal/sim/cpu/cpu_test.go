package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/sim/mem"
)

func newCPU() *CPU { return New(mem.New(arch.DEC3000_600())) }

// seq builds a straight-line trace of n instructions of class op starting at
// base.
func seq(base uint64, op arch.Op, n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{Addr: base + uint64(4*i), Op: op}
	}
	return out
}

func TestALUPairing(t *testing.T) {
	c := newCPU()
	m := c.Run(seq(0x1000, arch.OpALU, 12))
	// Dual issue is rationed: the strict 21064 issue rules plus real data
	// dependences mean only every third adjacent pair dual-issues, so 12
	// ALU ops take fewer than 12 but more than 6 cycles.
	if m.PerfectCycles >= 12 {
		t.Fatalf("perfect cycles = %d, want some dual issue", m.PerfectCycles)
	}
	if m.PerfectCycles <= 6 {
		t.Fatalf("perfect cycles = %d; pairing must be rationed", m.PerfectCycles)
	}
	if m.Instructions != 12 {
		t.Fatalf("instructions = %d", m.Instructions)
	}
}

func TestTakenBranchPenalty(t *testing.T) {
	m := arch.DEC3000_600()
	c := newCPU()
	notTaken := c.Run([]Entry{{Addr: 0x1000, Op: arch.OpCondBr, Taken: false}})
	c2 := newCPU()
	taken := c2.Run([]Entry{{Addr: 0x1000, Op: arch.OpCondBr, Taken: true}})
	diff := taken.PerfectCycles - notTaken.PerfectCycles
	if diff != uint64(m.TakenBranchCycles) {
		t.Fatalf("taken-branch penalty = %d, want %d", diff, m.TakenBranchCycles)
	}
}

func TestMulLatency(t *testing.T) {
	m := arch.DEC3000_600()
	c := newCPU()
	got := c.Run([]Entry{{Addr: 0x1000, Op: arch.OpMul}})
	if got.PerfectCycles != uint64(m.MulCycles) {
		t.Fatalf("mul = %d cycles, want %d", got.PerfectCycles, m.MulCycles)
	}
}

func TestMCPIPositiveWithColdCaches(t *testing.T) {
	c := newCPU()
	m := c.Run(seq(0x1000, arch.OpALU, 64))
	if m.MCPI() <= 0 {
		t.Fatalf("cold-cache run must stall: mCPI = %v", m.MCPI())
	}
	if m.CPI() < m.ICPI() {
		t.Fatalf("CPI %v < iCPI %v", m.CPI(), m.ICPI())
	}
}

func TestWarmRerunHasLowerMCPI(t *testing.T) {
	c := newCPU()
	trace := seq(0x1000, arch.OpALU, 256)
	cold := c.Run(trace)
	warm := c.Run(trace)
	if warm.Cycles >= cold.Cycles {
		t.Fatalf("warm rerun (%d cycles) not faster than cold (%d)", warm.Cycles, cold.Cycles)
	}
	if warm.MCPI() != 0 {
		t.Fatalf("fully warm straight-line code should have mCPI 0, got %v", warm.MCPI())
	}
}

func TestLoadStoreChargeDataAccesses(t *testing.T) {
	c := newCPU()
	c.Run([]Entry{
		{Addr: 0x1000, Op: arch.OpLoad, DataAddr: 0x80000},
		{Addr: 0x1004, Op: arch.OpStore, DataAddr: 0x90000},
	})
	d := c.Hierarchy().DStats
	if d.Accesses != 2 {
		t.Fatalf("data accesses = %d, want 2", d.Accesses)
	}
}

func TestAdvanceCyclesNeutralForCPI(t *testing.T) {
	c := newCPU()
	c.Run(seq(0x1000, arch.OpALU, 16))
	before := c.Metrics()
	c.AdvanceCycles(1000)
	after := c.Metrics()
	if after.MCPI() != before.MCPI() {
		t.Fatalf("AdvanceCycles changed mCPI: %v -> %v", before.MCPI(), after.MCPI())
	}
	if after.Cycles != before.Cycles+1000 {
		t.Fatalf("Cycles = %d, want %d", after.Cycles, before.Cycles+1000)
	}
}

func TestMetricsSubAndString(t *testing.T) {
	a := Metrics{Instructions: 10, Cycles: 30, PerfectCycles: 20}
	b := Metrics{Instructions: 4, Cycles: 10, PerfectCycles: 8}
	d := a.Sub(b)
	if d != (Metrics{Instructions: 6, Cycles: 20, PerfectCycles: 12}) {
		t.Fatalf("Sub = %+v", d)
	}
	if d.String() == "" {
		t.Fatal("String must be non-empty")
	}
	var zero Metrics
	if zero.CPI() != 0 || zero.ICPI() != 0 || zero.MCPI() != 0 {
		t.Fatal("zero metrics must not divide by zero")
	}
}

// Property: cycles >= perfect cycles >= instructions/issue-width for any
// instruction mix, and execution is deterministic.
func TestCPUInvariants(t *testing.T) {
	ops := []arch.Op{arch.OpALU, arch.OpLoad, arch.OpStore, arch.OpCondBr, arch.OpBr, arch.OpJump, arch.OpMul, arch.OpNop}
	f := func(raw []byte) bool {
		trace := make([]Entry, len(raw))
		for i, b := range raw {
			op := ops[int(b)%len(ops)]
			trace[i] = Entry{
				Addr:     0x1000 + uint64(4*i),
				Op:       op,
				Taken:    b%2 == 0,
				DataAddr: 0x80000 + uint64(b)*8,
			}
		}
		run := func() Metrics {
			c := newCPU()
			return c.Run(trace)
		}
		m1, m2 := run(), run()
		if m1 != m2 {
			return false
		}
		if m1.Cycles < m1.PerfectCycles {
			return false
		}
		minCycles := uint64(len(trace)) / 2 // issue width 2
		return m1.PerfectCycles >= minCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
