// Package vet is a project-specific static checker for the determinism
// and seam invariants this repository's results depend on: simulations
// must not read wall-clock time or ambient randomness, reports must not
// let Go's randomized map iteration order reach their output, formatted
// output must not embed pointer values, and durable filesystem writes
// outside internal/storage must go through the fault-injectable
// storage.FS seam. The standard toolchain cannot know these rules;
// cmd/protovet runs them as part of `make check`.
//
// The checker is self-contained: it loads and type-checks the module with
// the standard library's go/* packages only, so it runs in the same
// offline, zero-dependency environment as the rest of the repository.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a rule violation at a source position.
type Diagnostic struct {
	// Pos locates the offending expression.
	Pos token.Position
	// Analyzer names the rule that fired.
	Analyzer string
	// Message explains the violation.
	Message string
}

// String renders the diagnostic in the file:line:col: [analyzer] message
// form protovet prints.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Fset maps AST nodes to source positions.
	Fset *token.FileSet
	// Files holds the parsed (non-test) source files.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression and identifier facts.
	Info *types.Info
}

// Analyzer is one checkable rule.
type Analyzer struct {
	// Name identifies the rule in diagnostics (e.g. "nowrand").
	Name string
	// Doc is the one-line rule description protovet -help lists.
	Doc string
	// Run inspects one package and returns its findings.
	Run func(p *Package) []Diagnostic
}

// Analyzers returns the full rule set in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{analyzerNowRand, analyzerMapRange, analyzerPtrFmt, analyzerFSSeam}
}

// RunAnalyzers applies every analyzer to every package and returns all
// findings sorted by position then analyzer, so the output is stable
// regardless of load or scheduling order.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		for _, a := range analyzers {
			out = append(out, a.Run(p)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
