package vet_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/vet"
)

// checkSrc type-checks one fixture file as a package with the given import
// path and returns it ready for analysis.
func checkSrc(t *testing.T, path, src string) *vet.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	p, err := vet.TypeCheck(path, fset, []*ast.File{f}, importer.ForCompiler(fset, "source", nil))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// run applies the full analyzer set to one fixture.
func run(t *testing.T, path, src string) []vet.Diagnostic {
	t.Helper()
	return vet.RunAnalyzers([]*vet.Package{checkSrc(t, path, src)}, vet.Analyzers())
}

// wantFindings asserts the diagnostics' analyzers, in order.
func wantFindings(t *testing.T, diags []vet.Diagnostic, analyzers ...string) {
	t.Helper()
	if len(diags) != len(analyzers) {
		t.Fatalf("got %d findings %v, want %d (%v)", len(diags), diags, len(analyzers), analyzers)
	}
	for i, want := range analyzers {
		if diags[i].Analyzer != want {
			t.Errorf("finding %d: analyzer %q, want %q (%v)", i, diags[i].Analyzer, want, diags[i])
		}
	}
}

const clockSrc = `package fake

import (
	"math/rand"
	"time"
)

func tick() int64 {
	rand.Seed(42)
	return time.Now().UnixNano() + int64(rand.Int())
}

func span(d time.Duration) time.Duration { return 2 * d } // type use is fine
`

func TestNowRandInDeterministicCore(t *testing.T) {
	wantFindings(t, run(t, "repro/internal/sim/fake", clockSrc),
		"nowrand", "nowrand", "nowrand")
}

func TestNowRandExemptOutsideCore(t *testing.T) {
	wantFindings(t, run(t, "repro/internal/layout/fake", clockSrc))
}

func TestMapRangeOrderIntoOutput(t *testing.T) {
	diags := run(t, "repro/internal/report/fake", `package fake

import (
	"fmt"
	"strings"
)

func render(m map[string]int) string {
	var sb strings.Builder
	for k, v := range m {
		fmt.Fprintf(&sb, "%s=%d\n", k, v)
	}
	return sb.String()
}
`)
	wantFindings(t, diags, "maprange")
	if !strings.Contains(diags[0].Message, "fmt.Fprintf") {
		t.Errorf("message %q does not name the sink", diags[0].Message)
	}
}

func TestMapRangeCollectThenSortClean(t *testing.T) {
	wantFindings(t, run(t, "repro/internal/report/fake", `package fake

import (
	"fmt"
	"sort"
	"strings"
)

func render(m map[string]int) (string, error) {
	var keys []string
	for k, v := range m {
		if v < 0 {
			// Constant message: no iteration-order data escapes.
			return "", fmt.Errorf("negative count")
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%d\n", k, m[k])
	}
	return sb.String(), nil
}
`))
}

func TestPtrFmt(t *testing.T) {
	wantFindings(t, run(t, "repro/internal/report/fake", `package fake

import "fmt"

func describe(v *int) (string, string) {
	return fmt.Sprintf("at %p", v), fmt.Sprintf("value %d", *v)
}
`), "ptrfmt")
}

const fsSeamSrc = `package fake

import "os"

func persist(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	f, err := os.Open(tmp)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func read(path string) ([]byte, error) { return os.ReadFile(path) } // reads are fine
`

func TestFSSeamOutsideStorage(t *testing.T) {
	diags := run(t, "repro/internal/serve/fake", fsSeamSrc)
	wantFindings(t, diags, "fsseam", "fsseam", "fsseam", "fsseam")
	if !strings.Contains(diags[0].Message, "os.WriteFile") {
		t.Errorf("message %q does not name the call", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "(*os.File).Sync") {
		t.Errorf("message %q does not name the Sync method", diags[1].Message)
	}
}

func TestFSSeamExemptInStorage(t *testing.T) {
	// internal/storage is the seam's one implementation site: the DiskFS
	// there is exactly where the os calls are supposed to live.
	wantFindings(t, run(t, "repro/internal/storage/fake", fsSeamSrc))
}

// TestModuleSelfClean loads the whole repository through the production
// loader and requires every analyzer to come back clean — the same gate
// `make check` runs via cmd/protovet.
func TestModuleSelfClean(t *testing.T) {
	pkgs, err := vet.LoadAll("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loader found only %d packages", len(pkgs))
	}
	if diags := vet.RunAnalyzers(pkgs, vet.Analyzers()); len(diags) > 0 {
		for _, d := range diags {
			t.Error(d)
		}
	}
}
