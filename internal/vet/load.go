package vet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loader type-checks the module's packages on demand. It doubles as the
// types.Importer the checker calls back into: module-internal import paths
// resolve recursively through the loader itself, everything else is
// delegated to the standard library's source importer, so the whole load
// works offline with no toolchain help.
type loader struct {
	fset    *token.FileSet
	module  string
	dirs    map[string]string // import path -> directory
	pkgs    map[string]*Package
	loading map[string]bool
	std     types.Importer
}

// LoadAll parses and type-checks every package of the module rooted at
// root (skipping _test.go files, testdata, and dot-directories) and
// returns them sorted by import path.
func LoadAll(root string) ([]*Package, error) {
	module, err := moduleName(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		module:  module,
		dirs:    map[string]string{},
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
		std:     importer.ForCompiler(fset, "source", nil),
	}
	if err := l.discover(root); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// moduleName reads the module path from root's go.mod.
func moduleName(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("vet: %w", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("vet: no module line in %s/go.mod", root)
}

// discover maps every package directory under root to its import path.
func (l *loader) discover(root string) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		files, err := sourceFiles(path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		imp := l.module
		if rel != "." {
			imp = l.module + "/" + filepath.ToSlash(rel)
		}
		l.dirs[imp] = path
		return nil
	})
}

// sourceFiles lists a directory's non-test .go files, sorted.
func sourceFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		out = append(out, filepath.Join(dir, n))
	}
	sort.Strings(out)
	return out, nil
}

// Import implements types.Importer: module-internal paths load through the
// loader, everything else through the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, ok := l.dirs[path]; ok {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package, memoized.
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("vet: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := sourceFiles(l.dirs[path])
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	p, err := TypeCheck(path, l.fset, files, l)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// TypeCheck runs the go/types checker over already-parsed files and wraps
// the result as a Package. It is the single construction point for both
// the module loader and fixture-based analyzer tests.
func TypeCheck(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tp, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("vet: %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tp, Info: info}, nil
}
