package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// deterministicPkg reports whether a package belongs to the simulation
// core, where results must be a pure function of the configuration: any
// wall-clock or ambient-randomness read there breaks reproducibility.
func deterministicPkg(path string) bool {
	for _, sub := range []string{"internal/sim", "internal/code", "internal/core", "internal/soak", "internal/optimize"} {
		if strings.Contains(path, sub) {
			return true
		}
	}
	return false
}

// pkgOf resolves a selector's base identifier to the imported package it
// names, or "" when the selector is not a package-qualified reference.
func pkgOf(p *Package, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// analyzerNowRand forbids wall-clock and ambient-randomness reads in the
// simulation core. Virtual time comes from the event loop and randomness
// from seeded fault plans; time.Now or math/rand there would make runs
// irreproducible.
var analyzerNowRand = &Analyzer{
	Name: "nowrand",
	Doc:  "no time.Now or math/rand in the deterministic simulation core",
	Run: func(p *Package) []Diagnostic {
		if !deterministicPkg(p.Path) {
			return nil
		}
		var out []Diagnostic
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch pkg := pkgOf(p, sel); {
				case pkg == "time" && sel.Sel.Name == "Now":
					out = append(out, Diagnostic{
						Pos:      p.Fset.Position(sel.Pos()),
						Analyzer: "nowrand",
						Message:  "time.Now in deterministic core; use the simulator's virtual clock",
					})
				case pkg == "math/rand" || pkg == "math/rand/v2":
					out = append(out, Diagnostic{
						Pos:      p.Fset.Position(sel.Pos()),
						Analyzer: "nowrand",
						Message:  fmt.Sprintf("%s.%s in deterministic core; use a seeded fault plan", pkg, sel.Sel.Name),
					})
				}
				return true
			})
		}
		return out
	},
}

// analyzerMapRange forbids map iteration order from reaching output. Go
// randomizes map order, so a report, table or JSON document that passes a
// map-range's key or value to an output call directly from the loop body
// differs run to run; the repository's idiom is collect-then-sort, which
// keeps the range variables out of output calls.
var analyzerMapRange = &Analyzer{
	Name: "maprange",
	Doc:  "no map-range key/value flowing into formatted output (order is randomized)",
	Run: func(p *Package) []Diagnostic {
		var out []Diagnostic
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.Info.Types[rs.X].Type
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				tainted := rangeVars(p, rs)
				if len(tainted) == 0 {
					return true
				}
				ast.Inspect(rs.Body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					sink := outputSink(p, call)
					if sink == "" || !mentionsAny(p, call.Args, tainted) {
						return true
					}
					out = append(out, Diagnostic{
						Pos:      p.Fset.Position(call.Pos()),
						Analyzer: "maprange",
						Message:  "map iteration order flows into " + sink + "; collect keys and sort before emitting",
					})
					return true
				})
				return true
			})
		}
		return out
	},
}

// rangeVars returns the objects bound to a range statement's key and value.
func rangeVars(p *Package, rs *ast.RangeStmt) []types.Object {
	var out []types.Object
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if o := p.Info.Defs[id]; o != nil {
			out = append(out, o)
		} else if o := p.Info.Uses[id]; o != nil {
			out = append(out, o)
		}
	}
	return out
}

// mentionsAny reports whether any expression references one of the given
// objects.
func mentionsAny(p *Package, exprs []ast.Expr, objs []types.Object) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			o := p.Info.Uses[id]
			for _, want := range objs {
				if o == want {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// outputSink classifies a call as an output producer — a fmt or json call,
// or a write into a strings.Builder / bytes.Buffer — returning a short
// description, or "" for calls that cannot leak iteration order.
func outputSink(p *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch pkg := pkgOf(p, sel); pkg {
	case "fmt":
		return "fmt." + sel.Sel.Name
	case "encoding/json":
		return "json." + sel.Sel.Name
	}
	if !strings.HasPrefix(sel.Sel.Name, "Write") {
		return ""
	}
	t := p.Info.Types[sel.X].Type
	if t == nil {
		return ""
	}
	s := t.String()
	if strings.HasSuffix(s, "strings.Builder") || strings.HasSuffix(s, "bytes.Buffer") {
		return s[strings.LastIndex(s, "/")+1:] + "." + sel.Sel.Name
	}
	return ""
}

// fsMutators names the os-package calls that durably mutate the
// filesystem; routing them through a storage.FS is what makes journals and
// stores fault-injectable and crash-enumerable.
var fsMutators = map[string]bool{"WriteFile": true, "Rename": true, "Remove": true}

// analyzerFSSeam enforces the storage seam: outside internal/storage (the
// seam's one implementation site), durable filesystem mutation must go
// through an injected storage.FS, never the os package directly. A direct
// os.WriteFile in, say, the daemon would dodge both the fault layer and
// the crash-point enumerator — the write would be untestable for exactly
// the failures the storage layer exists to exercise.
var analyzerFSSeam = &Analyzer{
	Name: "fsseam",
	Doc:  "no direct os.WriteFile/Rename/Remove or (*os.File).Sync outside internal/storage",
	Run: func(p *Package) []Diagnostic {
		if strings.Contains(p.Path, "internal/storage") {
			return nil
		}
		var out []Diagnostic
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if pkgOf(p, sel) == "os" && fsMutators[sel.Sel.Name] {
					out = append(out, Diagnostic{
						Pos:      p.Fset.Position(sel.Pos()),
						Analyzer: "fsseam",
						Message:  "os." + sel.Sel.Name + " bypasses the storage seam; write through a storage.FS",
					})
					return true
				}
				if sel.Sel.Name == "Sync" {
					if t := p.Info.Types[sel.X].Type; t != nil && t.String() == "*os.File" {
						out = append(out, Diagnostic{
							Pos:      p.Fset.Position(sel.Pos()),
							Analyzer: "fsseam",
							Message:  "(*os.File).Sync bypasses the storage seam; sync through a storage.FS",
						})
					}
				}
				return true
			})
		}
		return out
	},
}

// ptrVerb matches the %p conversion, with any flags or width, in a format
// string.
var ptrVerb = regexp.MustCompile(`%[-+# 0-9.]*p`)

// fmtFormatters names the fmt functions whose first string argument is a
// format specification.
var fmtFormatters = map[string]bool{
	"Printf": true, "Sprintf": true, "Fprintf": true, "Errorf": true,
	"Appendf": true, "Fscanf": false, "Sscanf": false, "Scanf": false,
}

// analyzerPtrFmt forbids the %p verb in format strings: pointer values
// change across runs (and under ASLR), so any report embedding one is
// nondeterministic by construction.
var analyzerPtrFmt = &Analyzer{
	Name: "ptrfmt",
	Doc:  "no %p in format strings (pointer values are run-dependent)",
	Run: func(p *Package) []Diagnostic {
		var out []Diagnostic
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || pkgOf(p, sel) != "fmt" || !fmtFormatters[sel.Sel.Name] {
					return true
				}
				for _, arg := range call.Args {
					lit, ok := arg.(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					s, err := strconv.Unquote(lit.Value)
					if err != nil || !ptrVerb.MatchString(s) {
						continue
					}
					out = append(out, Diagnostic{
						Pos:      p.Fset.Position(lit.Pos()),
						Analyzer: "ptrfmt",
						Message:  "%p in format string embeds a run-dependent pointer value",
					})
				}
				return true
			})
		}
		return out
	},
}
