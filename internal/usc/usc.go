// Package usc is a miniature Universal Stub Compiler (USC) in the spirit of
// O'Malley et al.: a declarative description of a message/descriptor layout
// is "compiled" into accessor functions that read and write fields directly
// in TURBOchannel sparse memory, replacing the copy-in/modify/copy-out
// pattern traditional LANCE drivers use (§2.2.4). The compiler also reports
// the cost (in modeled instructions and memory accesses) of each access
// style, which the LANCE code models consume.
package usc

import (
	"fmt"

	"repro/internal/turbochannel"
)

// Field describes one field of a descriptor: its name, the index of the
// 16-bit word it lives in, the bit offset within that word, and its width
// in bits (1..16; multi-word fields are described as multiple fields).
type Field struct {
	Name  string
	Word  int
	Shift uint
	Bits  uint
}

// Layout is a named descriptor format.
type Layout struct {
	Name   string
	Words  int
	Fields []Field
}

// Validate checks that every field fits its word and names are unique.
func (l *Layout) Validate() error {
	seen := map[string]bool{}
	for _, f := range l.Fields {
		if seen[f.Name] {
			return fmt.Errorf("usc: layout %s: duplicate field %q", l.Name, f.Name)
		}
		seen[f.Name] = true
		if f.Bits == 0 || f.Bits > 16 {
			return fmt.Errorf("usc: layout %s: field %q has %d bits", l.Name, f.Name, f.Bits)
		}
		if f.Shift+f.Bits > 16 {
			return fmt.Errorf("usc: layout %s: field %q overflows its word", l.Name, f.Name)
		}
		if f.Word < 0 || f.Word >= l.Words {
			return fmt.Errorf("usc: layout %s: field %q in word %d of %d", l.Name, f.Name, f.Word, l.Words)
		}
	}
	return nil
}

func (l *Layout) field(name string) (Field, error) {
	for _, f := range l.Fields {
		if f.Name == name {
			return f, nil
		}
	}
	return Field{}, fmt.Errorf("usc: layout %s: no field %q", l.Name, name)
}

// Accessors provides direct sparse-memory access to one descriptor instance
// (the compiled stubs). baseWord is the word index of the descriptor's
// first word within the region.
type Accessors struct {
	layout   *Layout
	region   *turbochannel.Region
	baseWord int

	// Reads and Writes count 16-bit sparse-memory operations performed,
	// so tests and the Table 1 experiment can compare against the
	// copy-based style.
	Reads  int
	Writes int
}

// Compile checks the layout and binds it to a descriptor instance.
func Compile(l *Layout, r *turbochannel.Region, baseWord int) (*Accessors, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if (baseWord+l.Words)*2 > r.DenseLen() {
		return nil, fmt.Errorf("usc: descriptor %s at word %d exceeds region", l.Name, baseWord)
	}
	return &Accessors{layout: l, region: r, baseWord: baseWord}, nil
}

// MustCompile is Compile for statically-known layouts.
func MustCompile(l *Layout, r *turbochannel.Region, baseWord int) *Accessors {
	a, err := Compile(l, r, baseWord)
	if err != nil {
		panic(err)
	}
	return a
}

// Get reads a field directly from sparse memory.
func (a *Accessors) Get(name string) (uint16, error) {
	f, err := a.layout.field(name)
	if err != nil {
		return 0, err
	}
	a.Reads++
	w := a.region.ReadWord(a.baseWord + f.Word)
	mask := uint16(1)<<f.Bits - 1
	return (w >> f.Shift) & mask, nil
}

// Set writes a field directly in sparse memory (one read-modify-write when
// the field shares its word with others, one plain write otherwise).
func (a *Accessors) Set(name string, v uint16) error {
	f, err := a.layout.field(name)
	if err != nil {
		return err
	}
	mask := uint16(1)<<f.Bits - 1
	if v > mask {
		return fmt.Errorf("usc: value %d exceeds %d-bit field %q", v, f.Bits, name)
	}
	idx := a.baseWord + f.Word
	if f.Bits == 16 {
		a.Writes++
		a.region.WriteWord(idx, v)
		return nil
	}
	a.Reads++
	a.Writes++
	w := a.region.ReadWord(idx)
	w = (w &^ (mask << f.Shift)) | v<<f.Shift
	a.region.WriteWord(idx, w)
	return nil
}

// WordAddr exposes the sparse virtual address of a field's word for d-cache
// modeling.
func (a *Accessors) WordAddr(name string) (uint64, error) {
	f, err := a.layout.field(name)
	if err != nil {
		return 0, err
	}
	return a.region.WordAddr(a.baseWord + f.Word), nil
}

// CopyDescriptor models the traditional driver style for comparison: it
// copies the whole descriptor out of sparse memory into a dense local
// buffer, applies setter fn to it, and writes the entire descriptor back.
// Every update moves 2*Words*2 bytes regardless of how little changed.
func CopyDescriptor(l *Layout, r *turbochannel.Region, baseWord int, fn func(dense []uint16)) (reads, writes int) {
	dense := make([]uint16, l.Words)
	for i := range dense {
		dense[i] = r.ReadWord(baseWord + i)
		reads++
	}
	fn(dense)
	for i, w := range dense {
		r.WriteWord(baseWord+i, w)
		writes++
	}
	return reads, writes
}
