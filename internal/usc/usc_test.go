package usc

import (
	"testing"

	"repro/internal/turbochannel"
)

func testLayout() *Layout {
	return &Layout{
		Name:  "desc",
		Words: 5,
		Fields: []Field{
			{Name: "addrlo", Word: 0, Shift: 0, Bits: 16},
			{Name: "addrhi", Word: 1, Shift: 0, Bits: 8},
			{Name: "flags", Word: 1, Shift: 8, Bits: 8},
			{Name: "bcnt", Word: 2, Shift: 0, Bits: 16},
			{Name: "status", Word: 4, Shift: 0, Bits: 16},
		},
	}
}

func region() *turbochannel.Region {
	return turbochannel.NewRegion(turbochannel.SparseBase, 256)
}

func TestGetSetRoundtrip(t *testing.T) {
	a := MustCompile(testLayout(), region(), 0)
	if err := a.Set("bcnt", 1234); err != nil {
		t.Fatal(err)
	}
	if v, err := a.Get("bcnt"); err != nil || v != 1234 {
		t.Fatalf("bcnt = %d, %v", v, err)
	}
}

func TestSharedWordFieldsDoNotClobber(t *testing.T) {
	a := MustCompile(testLayout(), region(), 0)
	if err := a.Set("addrhi", 0x5A); err != nil {
		t.Fatal(err)
	}
	if err := a.Set("flags", 0x81); err != nil {
		t.Fatal(err)
	}
	hi, _ := a.Get("addrhi")
	fl, _ := a.Get("flags")
	if hi != 0x5A || fl != 0x81 {
		t.Fatalf("shared word corrupted: addrhi=%#x flags=%#x", hi, fl)
	}
}

func TestSetRejectsOverflow(t *testing.T) {
	a := MustCompile(testLayout(), region(), 0)
	if err := a.Set("flags", 0x100); err == nil {
		t.Fatal("9-bit value accepted by 8-bit field")
	}
}

func TestUnknownField(t *testing.T) {
	a := MustCompile(testLayout(), region(), 0)
	if _, err := a.Get("ghost"); err == nil {
		t.Fatal("unknown field read")
	}
	if err := a.Set("ghost", 1); err == nil {
		t.Fatal("unknown field written")
	}
	if _, err := a.WordAddr("ghost"); err == nil {
		t.Fatal("unknown field addressed")
	}
}

func TestValidateCatchesBadLayouts(t *testing.T) {
	bad := []*Layout{
		{Name: "dup", Words: 1, Fields: []Field{{Name: "x", Bits: 4}, {Name: "x", Bits: 4}}},
		{Name: "wide", Words: 1, Fields: []Field{{Name: "x", Bits: 17}}},
		{Name: "overflow", Words: 1, Fields: []Field{{Name: "x", Shift: 12, Bits: 8}}},
		{Name: "outside", Words: 1, Fields: []Field{{Name: "x", Word: 3, Bits: 4}}},
		{Name: "zero", Words: 1, Fields: []Field{{Name: "x", Bits: 0}}},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Fatalf("layout %s accepted", l.Name)
		}
	}
}

func TestCompileBoundsCheck(t *testing.T) {
	r := turbochannel.NewRegion(turbochannel.SparseBase, 8) // 4 words only
	if _, err := Compile(testLayout(), r, 0); err == nil {
		t.Fatal("descriptor beyond region accepted")
	}
}

func TestDirectAccessCheaperThanCopy(t *testing.T) {
	r := region()
	l := testLayout()
	a := MustCompile(l, r, 0)

	// Direct: set one field.
	a.Reads, a.Writes = 0, 0
	if err := a.Set("bcnt", 60); err != nil {
		t.Fatal(err)
	}
	directOps := a.Reads + a.Writes

	// Copy style: same single-field update moves the whole descriptor.
	reads, writes := CopyDescriptor(l, r, 0, func(dense []uint16) { dense[2] = 60 })
	copyOps := reads + writes

	if directOps >= copyOps {
		t.Fatalf("USC stubs (%d ops) not cheaper than copying (%d ops)", directOps, copyOps)
	}
	if copyOps != 10 { // 5 words in + 5 words out = the paper's 20 bytes
		t.Fatalf("copy style moved %d words, want 10", copyOps)
	}
	// And both styles leave the same memory contents.
	if v, _ := a.Get("bcnt"); v != 60 {
		t.Fatalf("bcnt after copy update = %d", v)
	}
}

func TestWordAddr(t *testing.T) {
	a := MustCompile(testLayout(), region(), 5) // second descriptor
	addr, err := a.WordAddr("bcnt")
	if err != nil {
		t.Fatal(err)
	}
	want := turbochannel.NewRegion(turbochannel.SparseBase, 256).WordAddr(7)
	if addr != want {
		t.Fatalf("bcnt at %#x, want %#x", addr, want)
	}
}
