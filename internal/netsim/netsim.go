// Package netsim is the event-driven network between the two simulated
// hosts: an isolated 10 Mb/s Ethernet with realistic serialization delay and
// the LANCE controller's transmit-to-interrupt overhead, running in virtual
// time on the shared event queue. Frames can be dropped by an injectable
// fault hook, which the protocol tests use to exercise retransmission.
package netsim

import (
	"fmt"

	"repro/internal/protocols/wire"
	"repro/internal/xkernel"
)

// Timing constants from §4.3 of the paper, in CPU cycles at 175 MHz.
const (
	// CyclesPerMicrosecond converts the paper's µs figures.
	CyclesPerMicrosecond = 175
	// ControllerOverheadCycles is the LANCE's ~47 µs of per-frame
	// overhead (105 µs measured transmit-to-interrupt minus 57.6 µs of
	// wire time for a minimum frame).
	ControllerOverheadCycles = 47 * CyclesPerMicrosecond
	// WireCyclesPerByte is the 10 Mb/s serialization cost: 0.8 µs per
	// byte.
	WireCyclesPerByte = 140
	// fcsBytes is the Ethernet frame check sequence appended on the wire.
	fcsBytes = 4
)

// WireTimeCycles returns the serialization time of a frame of n payload
// bytes (header included): the frame is padded to the Ethernet minimum and
// carries an 8-byte preamble and 4-byte FCS on the wire.
func WireTimeCycles(n int) uint64 {
	if n < wire.EthMinFrame {
		n = wire.EthMinFrame
	}
	return uint64(n+fcsBytes+wire.PreambleBytes) * WireCyclesPerByte
}

// Fault is the fate the fault layer assigns one frame in transit. The zero
// value is a clean delivery.
type Fault struct {
	// Drop loses the frame: no delivery event is ever scheduled.
	Drop bool
	// ExtraDelay postpones delivery (reordering, jitter) without moving
	// the sender's transmit-complete interrupt.
	ExtraDelay uint64
	// Duplicate delivers a second copy one wire time after the first.
	Duplicate bool
}

// Link is a point-to-point Ethernet segment. Both attached devices transmit
// through it; delivery happens on the shared event queue after controller
// overhead plus wire time.
type Link struct {
	Queue *xkernel.EventQueue

	// Drop, when non-nil, is consulted per frame; returning true loses
	// the frame in transit (fault injection for retransmission tests).
	Drop func(frame []byte) bool

	// Inject, when non-nil, decides each frame's fate. It receives the
	// private in-flight copy and may mutate it (payload corruption); the
	// returned Fault is applied on top of the legacy Drop hook.
	Inject func(frame []byte) Fault

	// Frames counts transmissions; Dropped injected losses; Delivered
	// scheduled deliveries (including duplicates); Duplicated injected
	// duplicates. Every frame is accounted for:
	// Delivered + Dropped == Frames + Duplicated.
	Frames     int
	Dropped    int
	Delivered  int
	Duplicated int

	// WireCycles and ControllerCycles accumulate, over every transmitted
	// frame (delivered or not — the sender serializes the frame either
	// way), the time spent on the wire and in the LANCE controller. They
	// are the inputs to the §4.3 phase accounting: subtracting them and
	// both hosts' processing time from a roundtrip leaves the time spent
	// waiting on protocol timers.
	WireCycles       uint64
	ControllerCycles uint64
}

// NewLink builds a link on the given queue.
func NewLink(q *xkernel.EventQueue) *Link {
	return &Link{Queue: q}
}

// Transmit puts a frame on the wire. extraDelay is added before the
// controller starts (the sender's processing time already consumed in the
// current event). deliver runs at the receiver when the frame (a private
// copy) arrives; txDone runs at the sender at the transmit-complete
// interrupt.
//
// The two callbacks are timed independently: txDone fires when the frame
// leaves the sender's controller whether or not it then survives the wire
// (the LANCE cannot see a collision-free frame get lost downstream), while
// delivery is subject to the fault layer — a dropped frame schedules no
// delivery at all, and a delayed one moves only the receive side.
func (l *Link) Transmit(frame []byte, extraDelay uint64, deliver func(frame []byte), txDone func()) {
	l.Frames++
	l.WireCycles += WireTimeCycles(len(frame))
	l.ControllerCycles += ControllerOverheadCycles
	txLatency := extraDelay + ControllerOverheadCycles + WireTimeCycles(len(frame))
	cp := append([]byte(nil), frame...)
	if txDone != nil {
		l.Queue.Schedule(txLatency, txDone)
	}
	var f Fault
	if l.Inject != nil {
		f = l.Inject(cp)
	}
	if l.Drop != nil && l.Drop(cp) {
		f.Drop = true
	}
	if f.Drop {
		l.Dropped++
		return
	}
	deliverAt := txLatency + f.ExtraDelay
	l.Delivered++
	l.Queue.Schedule(deliverAt, func() { deliver(cp) })
	if f.Duplicate {
		l.Duplicated++
		l.Delivered++
		l.WireCycles += WireTimeCycles(len(frame))
		dup := append([]byte(nil), cp...)
		l.Queue.Schedule(deliverAt+WireTimeCycles(len(frame)), func() { deliver(dup) })
	}
}

// Accounted reports whether every transmitted frame is accounted for as
// delivered, dropped, or duplicated — the simulation invariant the
// experiment harness checks after each run.
func (l *Link) Accounted() bool {
	return l.Delivered+l.Dropped == l.Frames+l.Duplicated
}

func (l *Link) String() string {
	return fmt.Sprintf("link{frames=%d delivered=%d dropped=%d duplicated=%d}",
		l.Frames, l.Delivered, l.Dropped, l.Duplicated)
}
