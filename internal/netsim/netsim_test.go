package netsim

import (
	"testing"

	"repro/internal/protocols/wire"
	"repro/internal/xkernel"
)

func TestWireTimeMatchesPaper(t *testing.T) {
	// A minimum frame (60B + 4B FCS + 8B preamble = 72B) at 10 Mb/s takes
	// 57.6 us = 10080 cycles at 175 MHz.
	got := WireTimeCycles(20) // padded up to the minimum
	if got != 10080 {
		t.Fatalf("minimum frame wire time = %d cycles, want 10080 (57.6 us)", got)
	}
	// A full MTU frame takes proportionally longer.
	if WireTimeCycles(1514) <= got {
		t.Fatal("large frames must serialize longer")
	}
}

func TestTransmitDeliversAfterLatency(t *testing.T) {
	q := xkernel.NewEventQueue()
	l := NewLink(q)
	var deliveredAt uint64
	var txDoneAt uint64
	frame := make([]byte, wire.EthMinFrame)
	frame[0] = 0x42
	l.Transmit(frame, 0, func(f []byte) {
		deliveredAt = q.Now()
		if f[0] != 0x42 {
			t.Error("frame corrupted in transit")
		}
	}, func() { txDoneAt = q.Now() })
	q.Run(10)
	want := uint64(ControllerOverheadCycles) + WireTimeCycles(len(frame))
	if deliveredAt != want {
		t.Fatalf("delivered at %d, want %d", deliveredAt, want)
	}
	if txDoneAt != want {
		t.Fatalf("tx-done at %d, want %d", txDoneAt, want)
	}
	// 105 us total, the paper's measured transmit-to-interrupt latency.
	us := float64(want) / CyclesPerMicrosecond
	if us < 104 || us > 106 {
		t.Fatalf("transmit-to-interrupt = %.1f us, want ~105", us)
	}
}

func TestExtraDelayShiftsDelivery(t *testing.T) {
	q := xkernel.NewEventQueue()
	l := NewLink(q)
	var at uint64
	l.Transmit(make([]byte, 60), 1000, func([]byte) { at = q.Now() }, nil)
	q.Run(10)
	base := uint64(ControllerOverheadCycles) + WireTimeCycles(60)
	if at != base+1000 {
		t.Fatalf("delivered at %d, want %d", at, base+1000)
	}
}

func TestTransmitCopiesFrame(t *testing.T) {
	q := xkernel.NewEventQueue()
	l := NewLink(q)
	frame := []byte{1, 2, 3}
	var got []byte
	l.Transmit(frame, 0, func(f []byte) { got = f }, nil)
	frame[0] = 99 // sender reuses its buffer before delivery
	q.Run(10)
	if got[0] != 1 {
		t.Fatal("in-flight frame aliased the sender's buffer")
	}
}

func TestDropInjection(t *testing.T) {
	q := xkernel.NewEventQueue()
	l := NewLink(q)
	n := 0
	l.Drop = func(frame []byte) bool { n++; return n == 1 }
	delivered := 0
	txDone := 0
	for i := 0; i < 3; i++ {
		l.Transmit(make([]byte, 60), 0, func([]byte) { delivered++ }, func() { txDone++ })
	}
	q.Run(10)
	if delivered != 2 {
		t.Fatalf("delivered %d frames, want 2", delivered)
	}
	if txDone != 3 {
		t.Fatal("sender must see tx-done even for lost frames")
	}
	if l.Dropped != 1 || l.Frames != 3 {
		t.Fatalf("stats: %v", l)
	}
}

func TestDroppedFrameSchedulesNoDelivery(t *testing.T) {
	q := xkernel.NewEventQueue()
	l := NewLink(q)
	l.Inject = func([]byte) Fault { return Fault{Drop: true} }
	delivered := false
	txDoneAt := uint64(0)
	l.Transmit(make([]byte, 60), 0, func([]byte) { delivered = true }, func() { txDoneAt = q.Now() })
	steps := q.Run(10)
	if delivered {
		t.Fatal("dropped frame was delivered")
	}
	// The only event is the sender's tx-done: it fires at the full
	// transmit latency (the sender cannot see the downstream loss), and
	// nothing else remains queued.
	want := uint64(ControllerOverheadCycles) + WireTimeCycles(60)
	if txDoneAt != want {
		t.Fatalf("tx-done at %d, want %d", txDoneAt, want)
	}
	if steps != 1 || q.Pending() {
		t.Fatalf("queue ran %d events (want 1) with work still pending", steps)
	}
	if l.Dropped != 1 || l.Delivered != 0 || !l.Accounted() {
		t.Fatalf("stats: %v", l)
	}
}

func TestDuplicateDeliversTwiceAndAccounts(t *testing.T) {
	q := xkernel.NewEventQueue()
	l := NewLink(q)
	l.Inject = func([]byte) Fault { return Fault{Duplicate: true} }
	var times []uint64
	l.Transmit(make([]byte, 60), 0, func([]byte) { times = append(times, q.Now()) }, nil)
	q.Run(10)
	if len(times) != 2 {
		t.Fatalf("duplicate delivered %d times, want 2", len(times))
	}
	base := uint64(ControllerOverheadCycles) + WireTimeCycles(60)
	if times[0] != base || times[1] != base+WireTimeCycles(60) {
		t.Fatalf("delivery times %v, want [%d %d]", times, base, base+WireTimeCycles(60))
	}
	if l.Frames != 1 || l.Delivered != 2 || l.Duplicated != 1 || !l.Accounted() {
		t.Fatalf("stats: %v", l)
	}
}

func TestInjectCorruptsPrivateCopyOnly(t *testing.T) {
	q := xkernel.NewEventQueue()
	l := NewLink(q)
	l.Inject = func(f []byte) Fault {
		f[0] ^= 0xff // corrupt in place, like the fault injector does
		return Fault{}
	}
	sent := make([]byte, 60)
	var got byte
	l.Transmit(sent, 0, func(f []byte) { got = f[0] }, nil)
	q.Run(10)
	if got != 0xff {
		t.Fatalf("receiver saw %#x, want corrupted 0xff", got)
	}
	if sent[0] != 0 {
		t.Fatal("corruption leaked into the sender's buffer")
	}
}

func TestInjectExtraDelayShiftsDeliveryNotTxDone(t *testing.T) {
	q := xkernel.NewEventQueue()
	l := NewLink(q)
	l.Inject = func([]byte) Fault { return Fault{ExtraDelay: 5000} }
	var deliveredAt, txDoneAt uint64
	l.Transmit(make([]byte, 60), 0, func([]byte) { deliveredAt = q.Now() }, func() { txDoneAt = q.Now() })
	q.Run(10)
	base := uint64(ControllerOverheadCycles) + WireTimeCycles(60)
	if txDoneAt != base {
		t.Fatalf("tx-done at %d, want %d (unaffected by in-flight delay)", txDoneAt, base)
	}
	if deliveredAt != base+5000 {
		t.Fatalf("delivered at %d, want %d", deliveredAt, base+5000)
	}
}

func TestAccountedDetectsImbalance(t *testing.T) {
	q := xkernel.NewEventQueue()
	l := NewLink(q)
	l.Transmit(make([]byte, 60), 0, func([]byte) {}, nil)
	q.Run(10)
	if !l.Accounted() {
		t.Fatalf("clean link must account: %v", l)
	}
	l.Delivered++ // simulate a bookkeeping bug
	if l.Accounted() {
		t.Fatal("Accounted missed a delivered/frames imbalance")
	}
}
