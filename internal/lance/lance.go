// Package lance models the AMD Am7990 LANCE Ethernet controller and its
// device driver as found in the DEC 3000/600: receive and transmit rings of
// ten-byte descriptors living in sparse TURBOchannel shared memory, frame
// buffers in the same sparse window, per-frame controller latency, and the
// driver split the paper describes — the traced transmit path (including the
// descriptor update that USC optimizes) and the untraced interrupt entry.
package lance

import (
	"fmt"

	"repro/internal/code"
	"repro/internal/netsim"
	"repro/internal/protocols/wire"
	"repro/internal/turbochannel"
	"repro/internal/usc"
	"repro/internal/xkernel"
)

const (
	ringSize  = 4
	descWords = 5 // ten bytes per LANCE descriptor
	bufBytes  = 1536

	// descriptor flag bits (word 1, high byte)
	flagOWN = 0x80
	flagSTP = 0x02
	flagENP = 0x01

	// interruptCycles is the untraced software cost of taking the
	// receive interrupt (context save, dispatch); ~3 µs.
	interruptCycles = 3 * netsim.CyclesPerMicrosecond
	// txDoneCycles is the untraced transmit-complete handling.
	txDoneCycles = 2 * netsim.CyclesPerMicrosecond
)

// DescriptorLayout is the USC description of a LANCE ring descriptor.
var DescriptorLayout = &usc.Layout{
	Name:  "lance_desc",
	Words: descWords,
	Fields: []usc.Field{
		{Name: "addrlo", Word: 0, Shift: 0, Bits: 16},
		{Name: "addrhi", Word: 1, Shift: 0, Bits: 8},
		{Name: "flags", Word: 1, Shift: 8, Bits: 8},
		{Name: "bcnt", Word: 2, Shift: 0, Bits: 16},
		{Name: "mcnt", Word: 3, Shift: 0, Bits: 16},
		{Name: "status", Word: 4, Shift: 0, Bits: 16},
	},
}

// Device is one LANCE adaptor and its driver state.
type Device struct {
	H    *xkernel.Host
	Link *netsim.Link
	Peer *Device
	MAC  wire.MACAddr
	// Up is the device-independent Ethernet half receiving frames.
	Up xkernel.Protocol
	// UseUSC selects direct sparse-memory descriptor updates.
	UseUSC bool
	// Pool provides the pre-allocated receive message buffers.
	Pool *xkernel.Pool

	region *turbochannel.Region
	txDesc [ringSize]*usc.Accessors
	rxDesc [ringSize]*usc.Accessors
	txSlot int
	rxSlot int

	// TxFrames and RxFrames count traffic; DescCopies counts whole-
	// descriptor copies the non-USC path performed.
	TxFrames   int
	RxFrames   int
	DescCopies int

	// Classify, when set (PIN/ALL configurations), validates that an
	// incoming frame follows the path the inlined code assumes; the
	// returned cycle cost is charged to the receive path. A frame that
	// fails classification would take the general (non-inlined) code in
	// a real system; here it is counted and processed normally.
	Classify func(frame []byte) (ok bool, cycles uint64)
	// ClassifierMisses counts frames that failed classification.
	ClassifierMisses int

	// lastTxLen and lastRxLen feed the copy-loop trip counts of the code
	// models.
	lastTxLen int
	lastRxLen int
}

// New builds a device on host h attached to link l.
func New(h *xkernel.Host, l *netsim.Link, mac wire.MACAddr, useUSC bool) *Device {
	denseBytes := 2*ringSize*descWords*2 + 2*ringSize*bufBytes
	d := &Device{
		H:      h,
		Link:   l,
		MAC:    mac,
		UseUSC: useUSC,
		Pool:   xkernel.NewPool(h.Alloc, bufBytes, ringSize),
		region: turbochannel.NewRegion(turbochannel.SparseBase, denseBytes),
	}
	for i := 0; i < ringSize; i++ {
		d.txDesc[i] = usc.MustCompile(DescriptorLayout, d.region, i*descWords)
		d.rxDesc[i] = usc.MustCompile(DescriptorLayout, d.region, (ringSize+i)*descWords)
		// Program the buffer addresses once, at initialization.
		d.txDesc[i].Set("addrlo", uint16(d.txBufOff(i)))
		d.rxDesc[i].Set("addrlo", uint16(d.rxBufOff(i)))
	}
	h.Graph.AddNode("LANCE")
	h.EnvHooks = append(h.EnvHooks, d.bindConds)
	return d
}

// descriptor dense byte offsets end at 2*ringSize*descWords*2; buffers
// follow, 16-byte aligned.
func (d *Device) txBufOff(slot int) int {
	return 2*ringSize*descWords*2 + slot*bufBytes
}

func (d *Device) rxBufOff(slot int) int {
	return 2*ringSize*descWords*2 + (ringSize+slot)*bufBytes
}

// Region exposes the sparse window (for tests).
func (d *Device) Region() *turbochannel.Region { return d.region }

// bindConds provides the driver model conditions for the current event.
func (d *Device) bindConds(env *code.Binding) {
	env.SetFunc("lance.rxcopy.more", code.Counter(func() int { return (d.lastRxLen + 7) / 8 }))
	env.SetFunc("lance.txcopy.more", code.Counter(func() int { return (d.lastTxLen + 7) / 8 }))
	env.Bind("lance.ring", d.region.WordAddr(0))
	env.Bind("lance.buf", d.region.BufAddr(d.txBufOff(0)))
}

// Transmit sends a frame: the traced driver path writes the frame into the
// next transmit buffer, updates the ring descriptor (directly via USC stubs
// or with the copy-in/copy-out dance), and hands the frame to the
// controller. Delivery and the transmit-complete interrupt happen after the
// controller and wire latency.
func (d *Device) Transmit(m *xkernel.Msg) error {
	if d.Peer == nil {
		return fmt.Errorf("lance: %s has no peer", d.H.Name)
	}
	frame := m.Bytes()
	if len(frame) > bufBytes {
		return fmt.Errorf("lance: frame of %d bytes exceeds buffer", len(frame))
	}
	n := len(frame)
	if n < wire.EthMinFrame {
		n = wire.EthMinFrame
	}
	d.lastTxLen = n
	slot := d.txSlot
	d.txSlot = (d.txSlot + 1) % ringSize

	// Copy the frame into the sparse buffer (padded to minimum size).
	padded := make([]byte, n)
	copy(padded, frame)
	d.region.WriteBuf(d.txBufOff(slot), padded)

	// Update the descriptor.
	if d.UseUSC {
		d.txDesc[slot].Set("bcnt", uint16(n))
		d.txDesc[slot].Set("flags", flagOWN|flagSTP|flagENP)
	} else {
		d.DescCopies++
		usc.CopyDescriptor(DescriptorLayout, d.region, slot*descWords, func(dense []uint16) {
			dense[2] = uint16(n)
			dense[1] = (dense[1] & 0x00ff) | uint16(flagOWN|flagSTP|flagENP)<<8
		})
	}
	d.TxFrames++

	peer := d.Peer
	wireFrame := d.region.ReadBuf(d.txBufOff(slot), n)
	d.Link.Transmit(wireFrame, d.H.Elapsed(), peer.deliver, func() {
		// Transmit-complete interrupt: untraced housekeeping.
		d.H.CPU.AdvanceCycles(txDoneCycles)
		if d.UseUSC {
			d.txDesc[slot].Set("flags", flagSTP|flagENP)
		} else {
			d.DescCopies++
			usc.CopyDescriptor(DescriptorLayout, d.region, slot*descWords, func(dense []uint16) {
				dense[1] &= 0x00ff | uint16(flagSTP|flagENP)<<8
			})
		}
	})
	return nil
}

// deliver is called by the link when a frame arrives: the controller DMAs
// it into the next receive buffer and raises the receive interrupt. The
// interrupt entry is untraced; the traced path (ring processing, buffer
// shepherding, protocol processing) starts with the "lance_rx" model and
// runs up the protocol graph.
func (d *Device) deliver(frame []byte) {
	slot := d.rxSlot
	d.rxSlot = (d.rxSlot + 1) % ringSize
	d.region.WriteBuf(d.rxBufOff(slot), frame)
	if d.UseUSC {
		d.rxDesc[slot].Set("mcnt", uint16(len(frame)))
		d.rxDesc[slot].Set("flags", flagOWN)
	} else {
		usc.CopyDescriptor(DescriptorLayout, d.region, (ringSize+slot)*descWords, func(dense []uint16) {
			dense[3] = uint16(len(frame))
			dense[1] = (dense[1] & 0x00ff) | uint16(flagOWN)<<8
		})
	}
	d.RxFrames++
	d.lastRxLen = len(frame)

	// Interrupt entry (untraced).
	d.H.BeginEvent(frame)
	d.H.CPU.AdvanceCycles(interruptCycles)

	// Path-inlined configurations classify every frame before the
	// specialized code may run.
	if d.Classify != nil {
		ok, cycles := d.Classify(frame)
		d.H.CPU.AdvanceCycles(cycles)
		if !ok {
			d.ClassifierMisses++
		}
	}

	// Traced path: shepherd a message through the stack on a pool stack.
	d.H.Threads.Shepherd(func(stack uint64) {
		d.H.SetStack(stack)
		d.H.RunModel("lance_rx")
		data := d.region.ReadBuf(d.rxBufOff(slot), len(frame))
		m := d.Pool.Get()
		if err := m.Append(data); err != nil {
			return
		}
		if d.Up != nil {
			_ = d.Up.Demux(m)
		}
		// Refresh the shepherded buffer. This runs after any reply has
		// been handed to the controller, so its cost overlaps the wire
		// time and does not add to end-to-end latency — the §2.2.2
		// observation.
		d.Pool.Refresh(m)
		d.H.RunModel("lance_post")
	})
}
