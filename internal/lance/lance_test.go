package lance

import (
	"bytes"
	"testing"

	"repro/internal/arch"
	"repro/internal/netsim"
	"repro/internal/protocols/wire"
	"repro/internal/sim/cpu"
	"repro/internal/sim/mem"
	"repro/internal/xkernel"
)

type upSink struct{ frames [][]byte }

func (u *upSink) Name() string { return "SINK" }
func (u *upSink) Demux(m *xkernel.Msg) error {
	u.frames = append(u.frames, append([]byte(nil), m.Bytes()...))
	return nil
}

func pair(t *testing.T, useUSC bool) (*Device, *Device, *upSink, *xkernel.EventQueue) {
	t.Helper()
	q := xkernel.NewEventQueue()
	link := netsim.NewLink(q)
	mk := func(name string) *xkernel.Host {
		hm := mem.New(arch.DEC3000_600())
		return xkernel.NewHost(name, cpu.New(hm), hm, nil, q, 0)
	}
	a := New(mk("a"), link, wire.MACAddr{2, 0, 0, 0, 0, 1}, useUSC)
	b := New(mk("b"), link, wire.MACAddr{2, 0, 0, 0, 0, 2}, useUSC)
	a.Peer, b.Peer = b, a
	sink := &upSink{}
	b.Up = sink
	return a, b, sink, q
}

func TestTransmitDeliversThroughSparseMemory(t *testing.T) {
	for _, useUSC := range []bool{true, false} {
		a, b, sink, q := pair(t, useUSC)
		frame := append([]byte{0xDE, 0xAD}, make([]byte, 70)...)
		m := xkernel.NewMsgData(a.H.Alloc, frame)
		a.H.BeginEvent(nil)
		if err := a.Transmit(m); err != nil {
			t.Fatal(err)
		}
		q.Run(10)
		if len(sink.frames) != 1 {
			t.Fatalf("useUSC=%v: delivered %d frames", useUSC, len(sink.frames))
		}
		if !bytes.Equal(sink.frames[0][:len(frame)], frame) {
			t.Fatalf("useUSC=%v: frame corrupted through the ring", useUSC)
		}
		if a.TxFrames != 1 || b.RxFrames != 1 {
			t.Fatalf("counters: tx=%d rx=%d", a.TxFrames, b.RxFrames)
		}
	}
}

func TestMinimumFramePadding(t *testing.T) {
	a, _, sink, q := pair(t, true)
	a.H.BeginEvent(nil)
	m := xkernel.NewMsgData(a.H.Alloc, []byte{1, 2, 3})
	if err := a.Transmit(m); err != nil {
		t.Fatal(err)
	}
	q.Run(10)
	if len(sink.frames) != 1 || len(sink.frames[0]) != wire.EthMinFrame {
		t.Fatalf("short frame not padded to minimum: %d bytes", len(sink.frames[0]))
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	a, _, _, _ := pair(t, true)
	a.H.BeginEvent(nil)
	m := xkernel.NewMsgData(a.H.Alloc, make([]byte, 2000))
	if err := a.Transmit(m); err == nil {
		t.Fatal("2000-byte frame accepted")
	}
}

func TestNoPeerErrors(t *testing.T) {
	q := xkernel.NewEventQueue()
	hm := mem.New(arch.DEC3000_600())
	h := xkernel.NewHost("solo", cpu.New(hm), hm, nil, q, 0)
	d := New(h, netsim.NewLink(q), wire.MACAddr{2, 0, 0, 0, 0, 9}, true)
	h.BeginEvent(nil)
	if err := d.Transmit(xkernel.NewMsgData(h.Alloc, []byte{1})); err == nil {
		t.Fatal("transmit without a peer accepted")
	}
}

func TestCopyStyleCopiesDescriptors(t *testing.T) {
	a, _, _, q := pair(t, false)
	a.H.BeginEvent(nil)
	if err := a.Transmit(xkernel.NewMsgData(a.H.Alloc, []byte{1})); err != nil {
		t.Fatal(err)
	}
	q.Run(10)
	if a.DescCopies == 0 {
		t.Fatal("copy-style driver performed no descriptor copies")
	}
	aUSC, _, _, q2 := pair(t, true)
	aUSC.H.BeginEvent(nil)
	if err := aUSC.Transmit(xkernel.NewMsgData(aUSC.H.Alloc, []byte{1})); err != nil {
		t.Fatal(err)
	}
	q2.Run(10)
	if aUSC.DescCopies != 0 {
		t.Fatal("USC driver copied descriptors")
	}
}

func TestRingWrapsAround(t *testing.T) {
	a, _, sink, q := pair(t, true)
	for i := 0; i < 2*ringSize; i++ {
		a.H.BeginEvent(nil)
		if err := a.Transmit(xkernel.NewMsgData(a.H.Alloc, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
		q.Run(10)
	}
	if len(sink.frames) != 2*ringSize {
		t.Fatalf("delivered %d frames through a %d-slot ring", len(sink.frames), ringSize)
	}
	for i, f := range sink.frames {
		if f[0] != byte(i) {
			t.Fatalf("frame %d out of order or corrupted", i)
		}
	}
}

func TestClassifierChargesAndCounts(t *testing.T) {
	a, b, _, q := pair(t, true)
	charged := false
	b.Classify = func(frame []byte) (bool, uint64) {
		charged = true
		return false, 300
	}
	before := b.H.CPU.Now()
	a.H.BeginEvent(nil)
	if err := a.Transmit(xkernel.NewMsgData(a.H.Alloc, []byte{7})); err != nil {
		t.Fatal(err)
	}
	q.Run(10)
	if !charged {
		t.Fatal("classifier not consulted")
	}
	if b.ClassifierMisses != 1 {
		t.Fatalf("misses = %d", b.ClassifierMisses)
	}
	if b.H.CPU.Now()-before < 300 {
		t.Fatal("classifier cycles not charged")
	}
}

func TestDescriptorLayoutValid(t *testing.T) {
	if err := DescriptorLayout.Validate(); err != nil {
		t.Fatal(err)
	}
}
