package lance

import "repro/internal/code"

// Models returns the driver's code models. upDemux names the model of the
// device-independent Ethernet half's demux function (stack-specific);
// useUSC selects direct sparse-memory descriptor access over the
// copy-in/copy-out style.
//
// lance_rx is the root of the traced input path: ring processing, buffer
// shepherding (pool_get + bcopy from the sparse buffer), and the call up
// into the protocol graph. lance_tx is the tail of the output path:
// bcopy into the sparse buffer, descriptor update, controller kick.
// lance_post is the after-send message refresh, traced but overlapping
// communication.
func Models(upDemux string, useUSC bool) []*code.Function {
	return []*code.Function{
		rxModel(upDemux, useUSC),
		txModel(useUSC),
		postModel(),
	}
}

func rxModel(upDemux string, useUSC bool) *code.Function {
	b := code.NewBuilder("lance_rx", code.ClassPath).Frame(4)
	// Ring bookkeeping and status check.
	b.ALU(40)
	if useUSC {
		// Status and length read directly from the sparse descriptor.
		b.Load("lance.ring", 6).ALU(19)
	} else {
		// Copy the descriptor to dense memory first: 5 word reads.
		b.Load("lance.ring", 16).Store("$stack", 16).ALU(40).Load("$stack", 6)
	}
	b.Cond("lance.rxerr", "rxerr", "shepherd")
	b.Block("rxerr").Kind(code.BlockError).ALU(179).Store("lance.ring", 6).Ret()
	// Take a message buffer and copy the frame out of sparse memory.
	b.Block("shepherd").ALU(30).Call("stack_attach").Call("pool_get")
	b.ALU(19).Call("bcopy") // driven by lance.rxcopy.more
	// Hand the descriptor back to the controller.
	if useUSC {
		b.Store("lance.ring", 3).ALU(10)
	} else {
		b.ALU(30).Store("lance.ring", 16)
	}
	b.ALU(25).Call(upDemux)
	b.Ret()
	return b.MustBuild()
}

func txModel(useUSC bool) *code.Function {
	b := code.NewBuilder("lance_tx", code.ClassPath).Frame(3)
	// Ring slot selection, frame length computation, minimum-size pad.
	b.ALU(59).Load("lance.ring", 3)
	b.Cond("lance.ringfull", "full", "copy")
	b.Block("full").Kind(code.BlockError).ALU(198).Ret()
	// Copy the frame into the sparse transmit buffer.
	b.Block("copy").ALU(19).Call("bcopy") // driven by lance.txcopy.more
	if useUSC {
		// Direct field updates: bcnt, then flags (read-modify-write).
		b.Store("lance.ring", 3).Load("lance.ring", 3).ALU(15).Store("lance.ring", 3)
		b.ALU(15)
	} else {
		// Copy the 10-byte descriptor in, modify, copy back: the
		// traditional driver style USC replaces (~50 instructions per
		// update, ~171 dynamic per packet including the tx-done side).
		b.Load("lance.ring", 16).Store("$stack", 16).ALU(49)
		b.Load("$stack", 16).ALU(40).Store("$stack", 16)
		b.Load("$stack", 16).Store("lance.ring", 16).ALU(59)
	}
	// Kick the controller via its CSR.
	b.ALU(19).Store("lance.csr", 3)
	b.Ret()
	return b.MustBuild()
}

func postModel() *code.Function {
	return code.NewBuilder("lance_post", code.ClassPath).
		Frame(1).
		ALU(19).Call("pool_refresh").ALU(10).
		Ret().
		MustBuild()
}
